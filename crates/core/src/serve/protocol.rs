//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Every message is one JSON document prefixed by its byte length as a
//! 4-byte big-endian integer. Three request ops exist:
//!
//! * `compile` — parse the DSL graph, compile it (or piggyback on an
//!   identical in-flight/bucketed compile), execute with seeded random
//!   bindings, and return per-output checksums (optionally the raw
//!   data). Carries the per-request deadline that flows into the
//!   compiler's `schedule_budget_ms` degradation ladder.
//! * `stats` — a control-plane snapshot of the daemon's counters.
//!   Bypasses admission control.
//! * `shutdown` — persist the schedule cache snapshot (when configured)
//!   and stop the daemon.
//!
//! **Admission ordering guarantee:** every compile request is assigned
//! a monotonically increasing admission `index` under the queue lock at
//! arrival. A request is shed (`status: "retry"`) if and only if the
//! bounded queue was full at its arrival instant, so of two requests
//! racing for the last queue slot the one with the **lowest admission
//! index wins** — shedding is deterministic given arrival order, never
//! a function of worker scheduling.
//!
//! Output tensors travel as FNV-1a checksums over the shape and the
//! raw f32 bit patterns; `want_data` additionally inlines the bits as a
//! hex string. Two responses with equal checksums are bitwise-identical
//! executions.

use super::json::{parse, Json, JsonError};
use crate::pipeline::FusionPolicy;
use sf_gpu_sim::Arch;
use std::io::{self, Read, Write};

/// Protocol version, checked by clients against [`StatsSnapshot`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one frame, as a sanity check against corrupt length
/// prefixes (a request carries DSL text; a response at most a few
/// tensors of hex data).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// One `compile` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Graph in the `sfc` DSL.
    pub graph: String,
    /// Target architecture.
    pub arch: Arch,
    /// Fusion policy.
    pub policy: FusionPolicy,
    /// Per-request schedule deadline, ms. `Some(0)` compiles
    /// best-so-far immediately (the degradation ladder guarantees
    /// progress); `None` explores unbounded.
    pub deadline_ms: Option<u64>,
    /// Seed for the random input bindings the request executes with.
    pub seed: u64,
    /// Inline the raw output bits (hex) next to the checksums.
    pub want_data: bool,
    /// Test/drain facility: block the worker processing this request on
    /// the named server-side gate until the operator releases it. Used
    /// by the admission-control tests to pin a worker deterministically.
    pub hold: Option<String>,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            id: 0,
            graph: String::new(),
            arch: Arch::Ampere,
            policy: FusionPolicy::SpaceFusion,
            deadline_ms: None,
            seed: 0,
            want_data: false,
            hold: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile + execute one graph.
    Compile(Box<CompileRequest>),
    /// Counter snapshot (control plane, never queued).
    Stats,
    /// Persist the snapshot and stop the daemon.
    Shutdown,
}

/// One output tensor digest.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputDigest {
    /// Output value name.
    pub name: String,
    /// Output shape.
    pub shape: Vec<usize>,
    /// FNV-1a 64 over the shape and the f32 bit patterns.
    pub checksum: u64,
    /// Raw f32 values (present under `want_data`); bit-exact via the
    /// hex encoding.
    pub data: Option<Vec<f32>>,
}

/// Whether a compile request was served from the program bucket cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The bucket was already compiled (or an in-flight compile was
    /// piggybacked on).
    Hit,
    /// This request performed the bucket's one compile.
    Miss,
}

impl CacheOutcome {
    fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// A successful compile+execute response.
#[derive(Debug, Clone, PartialEq)]
pub struct OkResponse {
    /// Echoed request id.
    pub id: u64,
    /// Admission index assigned at arrival.
    pub index: u64,
    /// Program-bucket cache outcome.
    pub cache: CacheOutcome,
    /// Kernels in the compiled program.
    pub kernels: usize,
    /// Degradation-ladder steps recorded by this request's compile.
    pub degradations: usize,
    /// Output digests, in graph output order.
    pub outputs: Vec<OutputDigest>,
}

/// Counter snapshot of a running daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Protocol version of the daemon.
    pub version: u64,
    /// Compile requests received (admitted or shed).
    pub requests: u64,
    /// Requests shed by admission control (`retry` responses).
    pub sheds: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered `error`.
    pub errors: u64,
    /// Buckets compiled by this process (exactly one per distinct
    /// in-flight bucket).
    pub program_compiles: u64,
    /// Requests served from the program bucket cache.
    pub program_hits: u64,
    /// Schedule-cache probe hits (includes warm-start entries).
    pub schedule_hits: u64,
    /// Schedule-cache probes that had to compute.
    pub schedule_misses: u64,
    /// Schedules currently cached.
    pub schedule_entries: u64,
    /// Snapshot entries loaded at warm start.
    pub warm_loaded: u64,
    /// Snapshot entries evicted at load (corrupt/stale/truncated).
    pub warm_evicted: u64,
    /// Degradation-ladder steps across all compiles.
    pub degradations: u64,
    /// Sessions closed by the per-session read/write timeout (stalled
    /// or idle peers reaped by the watchdog).
    pub sessions_reaped: u64,
    /// Session threads that panicked and were isolated (the daemon
    /// stays healthy; the crash is counted here).
    pub sessions_crashed: u64,
    /// Inbound frames rejected by the decoder (torn prefix, over-limit
    /// length, bad UTF-8, malformed JSON, unknown op).
    pub frames_rejected: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Compile + execute succeeded.
    Ok(Box<OkResponse>),
    /// Shed by admission control: the queue was full at arrival. The
    /// client should back off and retry.
    Retry {
        /// Echoed request id.
        id: u64,
        /// Admission index assigned at arrival (see the module docs for
        /// the lowest-index-wins guarantee).
        index: u64,
    },
    /// The request failed (parse error, compile error, execution
    /// error). The daemon itself stays up.
    Error {
        /// Echoed request id.
        id: u64,
        /// Human-readable failure.
        message: String,
    },
    /// Counter snapshot.
    Stats(Box<StatsSnapshot>),
    /// Shutdown acknowledged.
    Shutdown,
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Digest of one output tensor: FNV-1a over the shape dims and the f32
/// bit patterns, all little-endian.
pub fn tensor_checksum(shape: &[usize], data: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(8 * shape.len() + 4 * data.len());
    for &d in shape {
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in data {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn hex_of_f32s(data: &[f32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(data.len() * 8);
    for v in data {
        let _ = write!(out, "{:08x}", v.to_bits());
    }
    out
}

fn f32s_of_hex(hex: &str) -> Result<Vec<f32>, String> {
    if !hex.len().is_multiple_of(8) {
        return Err("data hex length not a multiple of 8".into());
    }
    hex.as_bytes()
        .chunks(8)
        .map(|c| {
            let s = std::str::from_utf8(c).map_err(|_| "bad data hex".to_string())?;
            u32::from_str_radix(s, 16)
                .map(f32::from_bits)
                .map_err(|_| "bad data hex".to_string())
        })
        .collect()
}

impl Request {
    /// Encodes to a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Stats => Json::obj(vec![("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
            Request::Compile(r) => {
                let mut pairs = vec![
                    ("op", Json::Str("compile".into())),
                    ("id", Json::Num(r.id as f64)),
                    ("graph", Json::Str(r.graph.clone())),
                    ("arch", Json::Str(r.arch.name().into())),
                    ("policy", Json::Str(r.policy.name().into())),
                    ("seed", Json::Num(r.seed as f64)),
                    ("want_data", Json::Bool(r.want_data)),
                ];
                if let Some(ms) = r.deadline_ms {
                    pairs.push(("deadline_ms", Json::Num(ms as f64)));
                }
                if let Some(gate) = &r.hold {
                    pairs.push(("hold", Json::Str(gate.clone())));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Decodes from a JSON value.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request missing 'op'")?;
        match op {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "compile" => {
                let graph = doc
                    .get("graph")
                    .and_then(Json::as_str)
                    .ok_or("compile request missing 'graph'")?
                    .to_string();
                let arch = match doc.get("arch").and_then(Json::as_str) {
                    None => Arch::Ampere,
                    Some(s) => Arch::parse(s).ok_or_else(|| format!("unknown arch '{s}'"))?,
                };
                let policy = match doc.get("policy").and_then(Json::as_str) {
                    None => FusionPolicy::SpaceFusion,
                    Some(s) => {
                        FusionPolicy::parse(s).ok_or_else(|| format!("unknown policy '{s}'"))?
                    }
                };
                let deadline_ms = match doc.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or("bad 'deadline_ms'")?),
                };
                Ok(Request::Compile(Box::new(CompileRequest {
                    id: doc.get("id").and_then(Json::as_u64).unwrap_or(0),
                    graph,
                    arch,
                    policy,
                    deadline_ms,
                    seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
                    want_data: doc
                        .get("want_data")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    hold: doc
                        .get("hold")
                        .and_then(Json::as_str)
                        .map(|s| s.to_string()),
                })))
            }
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

impl Response {
    /// Encodes to a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok(r) => {
                let outputs = r
                    .outputs
                    .iter()
                    .map(|o| {
                        let mut pairs = vec![
                            ("name", Json::Str(o.name.clone())),
                            (
                                "shape",
                                Json::Arr(o.shape.iter().map(|&d| Json::Num(d as f64)).collect()),
                            ),
                            ("checksum", Json::Str(format!("{:016x}", o.checksum))),
                        ];
                        if let Some(data) = &o.data {
                            pairs.push(("data", Json::Str(hex_of_f32s(data))));
                        }
                        Json::obj(pairs)
                    })
                    .collect();
                Json::obj(vec![
                    ("status", Json::Str("ok".into())),
                    ("id", Json::Num(r.id as f64)),
                    ("index", Json::Num(r.index as f64)),
                    ("cache", Json::Str(r.cache.name().into())),
                    ("kernels", Json::Num(r.kernels as f64)),
                    ("degradations", Json::Num(r.degradations as f64)),
                    ("outputs", Json::Arr(outputs)),
                ])
            }
            Response::Retry { id, index } => Json::obj(vec![
                ("status", Json::Str("retry".into())),
                ("id", Json::Num(*id as f64)),
                ("index", Json::Num(*index as f64)),
            ]),
            Response::Error { id, message } => Json::obj(vec![
                ("status", Json::Str("error".into())),
                ("id", Json::Num(*id as f64)),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Stats(s) => Json::obj(vec![
                ("status", Json::Str("stats".into())),
                ("version", Json::Num(s.version as f64)),
                ("requests", Json::Num(s.requests as f64)),
                ("sheds", Json::Num(s.sheds as f64)),
                ("ok", Json::Num(s.ok as f64)),
                ("errors", Json::Num(s.errors as f64)),
                ("program_compiles", Json::Num(s.program_compiles as f64)),
                ("program_hits", Json::Num(s.program_hits as f64)),
                ("schedule_hits", Json::Num(s.schedule_hits as f64)),
                ("schedule_misses", Json::Num(s.schedule_misses as f64)),
                ("schedule_entries", Json::Num(s.schedule_entries as f64)),
                ("warm_loaded", Json::Num(s.warm_loaded as f64)),
                ("warm_evicted", Json::Num(s.warm_evicted as f64)),
                ("degradations", Json::Num(s.degradations as f64)),
                ("sessions_reaped", Json::Num(s.sessions_reaped as f64)),
                ("sessions_crashed", Json::Num(s.sessions_crashed as f64)),
                ("frames_rejected", Json::Num(s.frames_rejected as f64)),
            ]),
            Response::Shutdown => Json::obj(vec![("status", Json::Str("shutdown".into()))]),
        }
    }

    /// Decodes from a JSON value.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing 'status'")?;
        let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
        let field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing '{key}'"))
        };
        match status {
            "shutdown" => Ok(Response::Shutdown),
            "retry" => Ok(Response::Retry {
                id,
                index: field("index")?,
            }),
            "error" => Ok(Response::Error {
                id,
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "stats" => Ok(Response::Stats(Box::new(StatsSnapshot {
                version: field("version")?,
                requests: field("requests")?,
                sheds: field("sheds")?,
                ok: field("ok")?,
                errors: field("errors")?,
                program_compiles: field("program_compiles")?,
                program_hits: field("program_hits")?,
                schedule_hits: field("schedule_hits")?,
                schedule_misses: field("schedule_misses")?,
                schedule_entries: field("schedule_entries")?,
                warm_loaded: field("warm_loaded")?,
                warm_evicted: field("warm_evicted")?,
                degradations: field("degradations")?,
                sessions_reaped: field("sessions_reaped")?,
                sessions_crashed: field("sessions_crashed")?,
                frames_rejected: field("frames_rejected")?,
            }))),
            "ok" => {
                let cache = match doc.get("cache").and_then(Json::as_str) {
                    Some("hit") => CacheOutcome::Hit,
                    Some("miss") => CacheOutcome::Miss,
                    other => return Err(format!("bad 'cache' field {other:?}")),
                };
                let outputs = doc
                    .get("outputs")
                    .and_then(Json::as_arr)
                    .ok_or("ok response missing 'outputs'")?
                    .iter()
                    .map(|o| {
                        let shape = o
                            .get("shape")
                            .and_then(Json::as_arr)
                            .ok_or("output missing 'shape'")?
                            .iter()
                            .map(|d| d.as_u64().map(|d| d as usize).ok_or("bad shape dim"))
                            .collect::<Result<Vec<usize>, &str>>()
                            .map_err(|e| e.to_string())?;
                        let checksum = o
                            .get("checksum")
                            .and_then(Json::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or("output missing 'checksum'")?;
                        let data = match o.get("data").and_then(Json::as_str) {
                            Some(hex) => Some(f32s_of_hex(hex)?),
                            None => None,
                        };
                        Ok(OutputDigest {
                            name: o
                                .get("name")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string(),
                            shape,
                            checksum,
                            data,
                        })
                    })
                    .collect::<Result<Vec<OutputDigest>, String>>()?;
                Ok(Response::Ok(Box::new(OkResponse {
                    id,
                    index: field("index")?,
                    cache,
                    kernels: field("kernels")? as usize,
                    degradations: field("degradations")? as usize,
                    outputs,
                })))
            }
            other => Err(format!("unknown status '{other}'")),
        }
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let body = doc.render();
    let len = body.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` only on a
/// clean EOF at a frame boundary (the peer closed between frames); a
/// torn prefix (1–3 bytes then EOF) is an `UnexpectedEof` error, so a
/// half-written frame is never mistaken for a graceful close. The body
/// is read incrementally via `Read::take`, so a hostile length prefix
/// within `MAX_FRAME_BYTES` still only allocates what the peer sends.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut body = Vec::new();
    r.take(len as u64).read_to_end(&mut body)?;
    if body.len() < len as usize {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame body",
        ));
    }
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    parse(&text)
        .map(Some)
        .map_err(|e: JsonError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_compile() -> Request {
        Request::Compile(Box::new(CompileRequest {
            id: 9,
            graph: "graph g f32\ninput x [4, 4]\ny = exp x\noutput y\n".into(),
            arch: Arch::Hopper,
            policy: FusionPolicy::MiOnly,
            deadline_ms: Some(25),
            seed: 7,
            want_data: true,
            hold: Some("g0".into()),
        }))
    }

    #[test]
    fn requests_round_trip() {
        for req in [sample_compile(), Request::Stats, Request::Shutdown] {
            assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let ok = Response::Ok(Box::new(OkResponse {
            id: 9,
            index: 3,
            cache: CacheOutcome::Miss,
            kernels: 2,
            degradations: 1,
            outputs: vec![OutputDigest {
                name: "y".into(),
                shape: vec![4, 4],
                checksum: 0xdead_beef,
                data: Some(vec![1.0, -0.5, f32::MIN_POSITIVE]),
            }],
        }));
        let retry = Response::Retry { id: 1, index: 12 };
        let err = Response::Error {
            id: 2,
            message: "no \"luck\"\n".into(),
        };
        let stats = Response::Stats(Box::new(StatsSnapshot {
            version: PROTOCOL_VERSION,
            requests: 10,
            sheds: 1,
            ok: 8,
            errors: 1,
            program_compiles: 3,
            program_hits: 5,
            schedule_hits: 4,
            schedule_misses: 3,
            schedule_entries: 3,
            warm_loaded: 2,
            warm_evicted: 1,
            degradations: 1,
            sessions_reaped: 2,
            sessions_crashed: 1,
            frames_rejected: 3,
        }));
        for resp in [ok, retry, err, stats, Response::Shutdown] {
            assert_eq!(Response::from_json(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample_compile().to_json()).unwrap();
        write_frame(&mut buf, &Request::Stats.to_json()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a = read_frame(&mut cursor).unwrap().unwrap();
        let b = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::from_json(&a).unwrap(), sample_compile());
        assert_eq!(Request::from_json(&b).unwrap(), Request::Stats);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats.to_json()).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
        // An absurd length prefix is rejected before allocation.
        let mut cursor = std::io::Cursor::new(vec![0xff, 0xff, 0xff, 0xff]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn torn_length_prefix_is_an_error_not_a_clean_eof() {
        for n in 1..4 {
            let mut cursor = std::io::Cursor::new(vec![0u8; n]);
            let e = read_frame(&mut cursor).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "{n}-byte prefix");
        }
        // Zero bytes is the one clean EOF.
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn checksums_are_bit_sensitive() {
        let a = tensor_checksum(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = tensor_checksum(&[2, 2], &[1.0, 2.0, 3.0, 4.0000005]);
        let c = tensor_checksum(&[4], &[1.0, 2.0, 3.0, 4.0]);
        assert_ne!(a, b, "value bits participate");
        assert_ne!(a, c, "shape participates");
        // -0.0 and 0.0 differ bitwise, so they must differ here too.
        assert_ne!(
            tensor_checksum(&[1], &[0.0]),
            tensor_checksum(&[1], &[-0.0])
        );
    }

    #[test]
    fn data_hex_is_bit_exact() {
        let vals = vec![0.0, -0.0, 1.5, f32::NAN, f32::INFINITY, -1e-40];
        let back = f32s_of_hex(&hex_of_f32s(&vals)).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(f32s_of_hex("abc").is_err());
        assert!(f32s_of_hex("zzzzzzzz").is_err());
    }
}
