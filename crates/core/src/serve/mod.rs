//! Fusion-as-a-service: the `sfc serve` daemon (paper §5's "compile the
//! repetitive ones only once", promoted from a per-process cache to a
//! persistent service).
//!
//! A daemon accepts compile+execute requests over a Unix-domain socket
//! (length-prefixed JSON frames, [`protocol`]) and multiplexes all
//! client sessions onto one shared [`ScheduleCache`], [`ExecEngine`],
//! and compiled-program bucket cache ([`bucket`]): N identical
//! in-flight requests trigger exactly one compile via the same
//! claim-ticket protocol the schedule cache uses internally. The
//! schedule cache persists across daemon restarts through versioned,
//! checksummed snapshots ([`snapshot`]) — corrupt or stale entries are
//! evicted individually at load and recompiled in place. Overload is
//! handled by deterministic admission control ([`server`]): a bounded
//! queue with lowest-arrival-index-wins shedding.
//!
//! [`ScheduleCache`]: crate::pipeline::ScheduleCache
//! [`ExecEngine`]: crate::codegen::ExecEngine

pub mod bucket;
pub mod chaos;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use bucket::{BucketKey, ProgramCache};
#[cfg(unix)]
pub use chaos::{ChaosOptions, ChaosReport};
#[cfg(unix)]
pub use client::{RetryPolicy, ServeClient};
pub use protocol::{
    fnv1a64, tensor_checksum, CacheOutcome, CompileRequest, OkResponse, OutputDigest, Request,
    Response, StatsSnapshot, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
#[cfg(unix)]
pub use server::Server;
pub use server::{ServeConfig, ServeCore};
pub use snapshot::{LoadReport, SNAPSHOT_VERSION};
