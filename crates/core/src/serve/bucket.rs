//! Request bucketing: identical in-flight requests compile once.
//!
//! Every compile request is mapped to a [`BucketKey`] — the graph hash,
//! shape signature, architecture, and fusion policy. The daemon keeps a
//! [`ProgramCache`] keyed by bucket, built on the same claim-ticket
//! protocol as the schedule cache: of N concurrent requests for one
//! bucket, exactly one wins the claim and compiles; the rest block on
//! the claim's condvar and receive the shared [`CompiledProgram`] the
//! winner publishes. A winner that fails drops its ticket, which hands
//! the claim to the next waiter instead of wedging the bucket.

use super::protocol::fnv1a64;
use crate::pipeline::{Claim, ClaimMap, ClaimTicket};
use crate::pipeline::{CompiledProgram, FusionPolicy};
use sf_gpu_sim::GpuArch;
use sf_ir::dsl::print_graph;
use sf_ir::graph::Graph;
use sf_ir::segment;
use std::sync::Arc;

/// Identity of a compile bucket: requests with equal keys share one
/// compiled program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BucketKey {
    /// FNV-1a 64 of the canonically printed graph.
    pub graph: u64,
    /// Shape signature of the graph (op kinds + shapes).
    pub shape: String,
    /// Debug rendering of the resolved [`GpuArch`] config.
    pub arch: String,
    /// Fusion policy.
    pub policy: FusionPolicy,
}

impl BucketKey {
    /// Builds the bucket key for a parsed graph. The graph hash is
    /// taken over the canonical DSL printing, so textual differences
    /// that parse identically (whitespace, comments) share a bucket.
    pub fn new(graph: &Graph, arch: &GpuArch, policy: FusionPolicy) -> Self {
        BucketKey {
            graph: fnv1a64(print_graph(graph).as_bytes()),
            shape: segment::shape_key(graph),
            arch: format!("{arch:?}"),
            policy,
        }
    }
}

/// Claim-ticket cache of compiled programs, shared by all serve
/// workers. See [`ClaimMap`] for the protocol.
pub struct ProgramCache {
    map: ClaimMap<BucketKey, Arc<CompiledProgram>>,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProgramCache {
            map: ClaimMap::new(),
        }
    }

    /// Claims a bucket: a hit returns the shared program immediately, a
    /// miss returns a ticket obligating the caller to compile and
    /// fulfill (or drop the ticket on failure, waking the next waiter).
    pub fn claim(&self, key: &BucketKey) -> Claim<'_, BucketKey, Arc<CompiledProgram>> {
        self.map.claim(key)
    }

    /// Publishes a compiled program through a held ticket.
    pub fn fulfill(
        &self,
        ticket: ClaimTicket<'_, BucketKey, Arc<CompiledProgram>>,
        program: Arc<CompiledProgram>,
    ) {
        ticket.fulfill(program);
    }

    /// Requests that found their bucket ready (or piggybacked on an
    /// in-flight compile).
    pub fn hits(&self) -> usize {
        self.map.hits()
    }

    /// Requests that had to compile their bucket.
    pub fn misses(&self) -> usize {
        self.map.misses()
    }

    /// Distinct buckets compiled so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no bucket has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sf_gpu_sim::Arch;
    use sf_ir::dsl::parse_graph;

    const DSL_A: &str = "graph a f32\ninput x [8, 8]\ny = exp x\noutput y\n";
    const DSL_B: &str = "graph b f32\ninput x [8, 8]\ny = relu x\noutput y\n";

    #[test]
    fn keys_distinguish_graph_arch_policy() {
        let ga = parse_graph(DSL_A).unwrap();
        let gb = parse_graph(DSL_B).unwrap();
        let volta = Arch::Volta.config();
        let hopper = Arch::Hopper.config();
        let base = BucketKey::new(&ga, &volta, FusionPolicy::SpaceFusion);
        assert_eq!(base, BucketKey::new(&ga, &volta, FusionPolicy::SpaceFusion));
        assert_ne!(base, BucketKey::new(&gb, &volta, FusionPolicy::SpaceFusion));
        assert_ne!(
            base,
            BucketKey::new(&ga, &hopper, FusionPolicy::SpaceFusion)
        );
        assert_ne!(base, BucketKey::new(&ga, &volta, FusionPolicy::Unfused));
    }

    #[test]
    fn reparsed_graph_hashes_equal() {
        // Hashing the canonical printing makes the key stable across
        // parse/print round trips.
        let g1 = parse_graph(DSL_A).unwrap();
        let g2 = parse_graph(&print_graph(&g1)).unwrap();
        let arch = Arch::Ampere.config();
        assert_eq!(
            BucketKey::new(&g1, &arch, FusionPolicy::SpaceFusion),
            BucketKey::new(&g2, &arch, FusionPolicy::SpaceFusion),
        );
    }
}
