//! Error types of the SpaceFusion compiler.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SfError>;

/// Errors raised across the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SfError {
    /// The SMG could not be built from the DFG (inconsistent shapes).
    SmgBuild(String),
    /// No dimension was eligible for spatial slicing (paper Alg. 1:
    /// "cannot be scheduled for parallelization").
    NoSpatialDim(String),
    /// Temporal slicing failed: the broadcast postposition / update-path
    /// analysis found no algebraic simplification (paper §4.3: "not all
    /// the All-to-One chains end up with simplification results"), or a
    /// sliced reduction depends on a produced value outside the sliced
    /// dimension (no legal phase ordering). Callers abandon the
    /// dimension and fall back to the next priority.
    UpdatePath(String),
    /// No schedule configuration satisfies the hardware resource
    /// constraints (triggers SMG partitioning).
    ResourceInfeasible(String),
    /// SMG partitioning could not split the graph further.
    Unpartitionable(String),
    /// Lowering or execution failure in the backend.
    Codegen(String),
    /// Underlying IR failure.
    Ir(String),
    /// The static verifier found deny-level diagnostics in a compiled
    /// kernel (see [`crate::verify`]).
    Verify(String),
    /// A pass or worker panicked. The panic was caught at an isolation
    /// boundary (see [`crate::resilience`]) and converted into an error
    /// so one bad group or block can degrade instead of aborting the
    /// process. `pass` names the boundary, `payload` the panic message.
    Internal {
        /// Isolation boundary the panic was caught at.
        pass: String,
        /// Stringified panic payload.
        payload: String,
    },
    /// A deadline budget expired before the work finished (see
    /// [`crate::resilience::Deadline`]).
    Timeout(String),
}

impl fmt::Display for SfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfError::SmgBuild(m) => write!(f, "SMG construction failed: {m}"),
            SfError::NoSpatialDim(m) => write!(f, "no spatially sliceable dimension: {m}"),
            SfError::UpdatePath(m) => write!(f, "update-path analysis failed: {m}"),
            SfError::ResourceInfeasible(m) => {
                write!(f, "no schedule satisfies resource constraints: {m}")
            }
            SfError::Unpartitionable(m) => write!(f, "SMG cannot be partitioned: {m}"),
            SfError::Codegen(m) => write!(f, "codegen failure: {m}"),
            SfError::Ir(m) => write!(f, "IR failure: {m}"),
            SfError::Verify(m) => write!(f, "verification failed: {m}"),
            SfError::Internal { pass, payload } => {
                write!(f, "internal panic in {pass}: {payload}")
            }
            SfError::Timeout(m) => write!(f, "deadline expired: {m}"),
        }
    }
}

impl std::error::Error for SfError {}

impl From<sf_ir::GraphError> for SfError {
    fn from(e: sf_ir::GraphError) -> Self {
        SfError::Ir(e.to_string())
    }
}

impl From<sf_tensor::TensorError> for SfError {
    fn from(e: sf_tensor::TensorError) -> Self {
        SfError::Codegen(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        for e in [
            SfError::SmgBuild("x".into()),
            SfError::NoSpatialDim("x".into()),
            SfError::UpdatePath("x".into()),
            SfError::ResourceInfeasible("x".into()),
            SfError::Unpartitionable("x".into()),
            SfError::Codegen("x".into()),
            SfError::Ir("x".into()),
            SfError::Verify("x".into()),
            SfError::Internal {
                pass: "x".into(),
                payload: "x".into(),
            },
            SfError::Timeout("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
