//! Algebraic graph rewrites that unlock additional slicing.
//!
//! The paper's temporal slicer gives up on dependency chains that
//! broadcast postposition cannot factor (§4.3, the △ cases). The
//! canonical example is the Fig. 10(c) LayerNorm: the variance
//! `mean((x − mean(x))²)` squares a broadcast difference, which has no
//! `core × factor` form, so LayerNorm is scheduled without temporal
//! slicing (whole rows on chip).
//!
//! This module implements the classic *algebraic aggregation* fix as a
//! source-level rewrite: `Var[x] = E[x²] − E[x]²`. After the rewrite the
//! two reductions are independent (both reduce raw streams of `x`), the
//! temporal slicer applies with Simple Aggregate, and LayerNorm becomes a
//! streaming two-phase kernel with an O(block) on-chip footprint — the
//! schedule production LayerNorm kernels actually use for very large
//! rows.
//!
//! The rewrite is an opt-in extension (`CompileOptions` leaves it off by
//! default so the reproduction matches the paper's Fig. 10(c) form); the
//! `ablation` benchmark quantifies its effect.

use sf_ir::{Graph, GraphError, OpKind, ValueId};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};

/// Rewrites `mean((x − mean(x))²)` chains into `E[x²] − E[x]²`.
///
/// Returns `None` when the graph contains no such pattern; otherwise the
/// rewritten graph (numerically equivalent up to float re-association).
pub fn streaming_variance(graph: &Graph) -> Option<Graph> {
    // Locate the pattern: mean1 = Mean(x, d); c = Sub(x, mean1);
    // sq = Sqr(c); var = Mean(sq, d).
    let ops = graph.ops();
    let mut target: Option<(usize, usize, usize, usize)> = None;
    for (i4, var_op) in ops.iter().enumerate() {
        let OpKind::Reduce {
            op: ReduceOp::Mean,
            dim,
        } = var_op.kind
        else {
            continue;
        };
        let Some(sq_op) = graph.producer(var_op.inputs[0]) else {
            continue;
        };
        if !matches!(sq_op.kind, OpKind::Unary(UnaryOp::Sqr)) {
            continue;
        }
        let Some(sub_op) = graph.producer(sq_op.inputs[0]) else {
            continue;
        };
        if !matches!(sub_op.kind, OpKind::Binary(BinaryOp::Sub)) {
            continue;
        }
        let Some(mean_op) = graph.producer(sub_op.inputs[1]) else {
            continue;
        };
        let OpKind::Reduce {
            op: ReduceOp::Mean,
            dim: d1,
        } = mean_op.kind
        else {
            continue;
        };
        if d1 != dim || mean_op.inputs[0] != sub_op.inputs[0] {
            continue;
        }
        let find = |needle: &sf_ir::OpNode| {
            ops.iter()
                .position(|o| std::ptr::eq(o, needle))
                .expect("op in graph")
        };
        target = Some((find(mean_op), find(sub_op), find(sq_op), i4));
        break;
    }
    let (i_mean, _i_sub, i_sq, i_var) = target?;

    // Rebuild the graph, replacing the sq/var pair with the streaming
    // form. The centered value (sub) is kept: phase-2 consumers still
    // use it.
    let mut out = Graph::new(format!("{}~streamvar", graph.name()), graph.dtype());
    out.instances = graph.instances;
    let mut map: Vec<Option<ValueId>> = vec![None; graph.values().len()];

    let import = |g: &mut Graph, map: &mut Vec<Option<ValueId>>, v: ValueId| -> ValueId {
        if let Some(id) = map[v.0] {
            return id;
        }
        let info = graph.value(v);
        let id = match info.kind {
            sf_ir::ValueKind::Weight => g.weight(info.name.clone(), info.shape.clone()),
            _ => g.input(info.name.clone(), info.shape.clone()),
        };
        map[v.0] = Some(id);
        id
    };

    let replay =
        |g: &mut Graph, kind: &OpKind, inputs: &[ValueId]| -> Result<ValueId, GraphError> {
            match kind {
                OpKind::Gemm { transpose_b } => g.gemm(inputs[0], inputs[1], *transpose_b),
                OpKind::Unary(u) => g.unary(*u, inputs[0]),
                OpKind::Binary(b) => g.binary(*b, inputs[0], inputs[1]),
                OpKind::Scalar { op, value } => g.scalar(*op, inputs[0], *value),
                OpKind::Reduce { op, dim } => g.reduce(*op, inputs[0], *dim),
                OpKind::Broadcast { dim, extent } => g.broadcast(inputs[0], *dim, *extent),
                OpKind::LayoutBarrier => unreachable!("fused regions have no barriers"),
            }
        };

    let dim = match ops[i_var].kind {
        OpKind::Reduce { dim, .. } => dim,
        _ => unreachable!(),
    };
    let x_src = ops[i_mean].inputs[0];

    for (oi, op) in ops.iter().enumerate() {
        if oi == i_sq {
            continue; // Sqr(centered) is replaced.
        }
        if oi == i_var {
            // var = mean(x²) − mean(x)².
            let x = map[x_src.0].expect("x imported by mean1");
            let sqx = out.unary(UnaryOp::Sqr, x).ok()?;
            let mean2 = out.reduce(ReduceOp::Mean, sqx, dim).ok()?;
            let m1 = map[ops[i_mean].output.0].expect("mean1 replayed");
            let m1sq = out.unary(UnaryOp::Sqr, m1).ok()?;
            let var = out.binary(BinaryOp::Sub, mean2, m1sq).ok()?;
            out.rename_value(var, graph.value(op.output).name.clone());
            map[op.output.0] = Some(var);
            continue;
        }
        let mut ins = Vec::with_capacity(op.inputs.len());
        for &raw in &op.inputs {
            let id = match map[raw.0] {
                Some(id) => id,
                None => import(&mut out, &mut map, raw),
            };
            ins.push(id);
        }
        let new_out = replay(&mut out, &op.kind, &ins).ok()?;
        out.rename_value(new_out, graph.value(op.output).name.clone());
        map[op.output.0] = Some(new_out);
    }

    for &o in graph.outputs() {
        let id = map[o.0]?;
        out.mark_output(id);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::{pick_temporal_dim, plan_temporal, AggKind};
    use crate::smg::build_smg;
    use sf_tensor::{DType, Shape};

    fn layernorm(m: usize, n: usize) -> Graph {
        let mut g = Graph::new("ln", DType::F32);
        let x = g.input("x", Shape::new(vec![m, n]));
        let w = g.weight("w", Shape::new(vec![1, n]));
        let b = g.weight("b", Shape::new(vec![1, n]));
        let mean = g.reduce(ReduceOp::Mean, x, 1).unwrap();
        let c = g.binary(BinaryOp::Sub, x, mean).unwrap();
        let sq = g.unary(UnaryOp::Sqr, c).unwrap();
        let var = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
        let veps = g.scalar(BinaryOp::Add, var, 1e-5).unwrap();
        let std = g.unary(UnaryOp::Sqrt, veps).unwrap();
        let norm = g.binary(BinaryOp::Div, c, std).unwrap();
        let sc = g.binary(BinaryOp::Mul, norm, w).unwrap();
        let y = g.binary(BinaryOp::Add, sc, b).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn rewrites_layernorm_variance() {
        let g = layernorm(16, 64);
        let r = streaming_variance(&g).expect("pattern found");
        // The rewritten graph is numerically equivalent.
        let bindings = g.random_bindings(3);
        let a = g.execute(&bindings).unwrap();
        let b = r.execute(&bindings).unwrap();
        assert!(a[0].allclose(&b[0], 1e-3));
    }

    #[test]
    fn rewrite_makes_layernorm_temporally_sliceable() {
        let g = layernorm(16, 256);
        // Before: the variance chain defeats broadcast postposition.
        let smg = build_smg(&g).unwrap();
        let n_dim = smg.value_axes[0][1];
        assert!(plan_temporal(&g, &smg, n_dim).is_err());

        // After: two independent means → Simple Aggregate, streaming.
        let r = streaming_variance(&g).unwrap();
        let smg2 = build_smg(&r).unwrap();
        let n2 = smg2.value_axes[0][1];
        let plan = plan_temporal(&r, &smg2, n2).expect("temporal plan");
        assert_eq!(plan.sliced.len(), 2);
        assert!(plan.sliced.iter().all(|s| s.agg == AggKind::Simple));
        assert!(plan.two_phase, "output spans the sliced dim");
        let m_dim = smg2.value_axes[0][0];
        assert_eq!(pick_temporal_dim(&r, &smg2, &[m_dim]), Some(n2));
    }

    #[test]
    fn rewritten_layernorm_compiles_and_matches() {
        use crate::compiler::{Compiler, FusionPolicy};
        use sf_gpu_sim::Arch;
        let g = layernorm(64, 512);
        let r = streaming_variance(&g).unwrap();
        let program = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
            .compile(&r)
            .unwrap();
        assert_eq!(program.kernels.len(), 1);
        let bindings = g.random_bindings(9);
        let expect = g.execute(&bindings).unwrap();
        let got = program.execute(&bindings).unwrap();
        assert!(got[0].allclose(&expect[0], 1e-2));
    }

    #[test]
    fn no_pattern_returns_none() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let y = g.unary(UnaryOp::Relu, x).unwrap();
        g.mark_output(y);
        assert!(streaming_variance(&g).is_none());

        // A mean without the centered-square chain is also left alone.
        let mut g2 = Graph::new("t2", DType::F32);
        let x2 = g2.input("x", Shape::new(vec![4, 8]));
        let m = g2.reduce(ReduceOp::Mean, x2, 1).unwrap();
        g2.mark_output(m);
        assert!(streaming_variance(&g2).is_none());
    }

    #[test]
    fn rewrite_preserves_outputs_and_names() {
        let g = layernorm(8, 32);
        let r = streaming_variance(&g).unwrap();
        assert_eq!(r.outputs().len(), 1);
        // The output keeps its original name (cross-kernel binding key).
        let orig = g.value(g.outputs()[0]).name.clone();
        assert_eq!(r.value(r.outputs()[0]).name, orig);
    }
}
