//! End-to-end inference engines as composition rules (paper §6.2).

use crate::handtuned;
use sf_gpu_sim::Arch;
use sf_ir::{Graph, OpKind};
use spacefusion::compiler::{CompileOptions, CompiledProgram, Compiler, FusionPolicy};
use spacefusion::Result;

/// Per-kernel dispatch cost of eager-mode PyTorch, µs.
///
/// The compiled systems run with CUDA Graphs (paper §6.2, "with CUDA
/// Graphs enabled to reduce the kernel launching time"), so they pay the
/// bare ~5 µs launch; the Huggingface-on-PyTorch baseline dispatches each
/// op through the Python eager path, which costs substantially more.
pub const EAGER_DISPATCH_US: f64 = 15.0;

/// The compared systems of Fig. 14 / Tables 5–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Huggingface-on-PyTorch eager baseline: one kernel per operator.
    PyTorch,
    /// SpaceFusion (this work).
    SpaceFusion,
    /// NVIDIA TensorRT: hand-tuned library composition — fused attention
    /// and LayerNorm kernels, GEMM-epilogue fusion elsewhere.
    TensorRt,
    /// Kernl: Triton FlashAttention + Triton fused LayerNorm on top of
    /// eager PyTorch GEMMs.
    Kernl,
    /// BladeDISC (implements AStitch): fuses memory-intensive operators
    /// only.
    BladeDisc,
    /// NNFusion (implements Welder): tile-graph fusion, no intra-operator
    /// dependency transformation.
    NnFusion,
}

impl Engine {
    /// All engines in the paper's presentation order.
    pub fn all() -> [Engine; 6] {
        [
            Engine::PyTorch,
            Engine::SpaceFusion,
            Engine::TensorRt,
            Engine::Kernl,
            Engine::BladeDisc,
            Engine::NnFusion,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::PyTorch => "PyTorch",
            Engine::SpaceFusion => "SpaceFusion",
            Engine::TensorRt => "TensorRT",
            Engine::Kernl => "Kernl",
            Engine::BladeDisc => "BladeDISC",
            Engine::NnFusion => "NNFusion",
        }
    }

    /// Architecture support, mirroring the paper's absent bars:
    /// "NNFusion for Ampere and Hopper, and BladeDISC for Hopper are not
    /// fully supported".
    pub fn supports(&self, arch: Arch) -> bool {
        match self {
            Engine::NnFusion => arch == Arch::Volta,
            Engine::BladeDisc => arch != Arch::Hopper,
            _ => true,
        }
    }

    /// Compiles one subprogram under this engine's composition rules.
    pub fn compile(&self, arch: Arch, graph: &Graph) -> Result<CompiledProgram> {
        match self {
            Engine::PyTorch => {
                let mut cfg = arch.config();
                cfg.launch_overhead_us = EAGER_DISPATCH_US;
                let opts = CompileOptions {
                    policy: FusionPolicy::Unfused,
                    ..Default::default()
                };
                Compiler::new_with_config(cfg, opts).compile(graph)
            }
            Engine::SpaceFusion => {
                Compiler::with_policy(arch, FusionPolicy::SpaceFusion).compile(graph)
            }
            Engine::BladeDisc => Compiler::with_policy(arch, FusionPolicy::MiOnly).compile(graph),
            Engine::NnFusion => Compiler::with_policy(arch, FusionPolicy::TileGraph).compile(graph),
            Engine::TensorRt => {
                if is_attention(graph) {
                    // TensorRT ships a hand-fused multi-head attention
                    // kernel on every evaluated architecture.
                    handtuned::compile_fixed(arch, graph, 64, Some(64))
                } else if is_row_norm(graph) {
                    handtuned::pytorch_op_layernorm(arch, graph)
                } else {
                    Compiler::with_policy(arch, FusionPolicy::EpilogueOnly).compile(graph)
                }
            }
            Engine::Kernl => {
                if is_attention(graph) {
                    handtuned::flash_attention_triton(arch, graph)
                } else if is_row_norm(graph) {
                    handtuned::triton_layernorm(arch, graph)
                } else {
                    Compiler::with_policy(arch, FusionPolicy::Unfused).compile(graph)
                }
            }
        }
    }
}

/// Heuristic: an attention-style subgraph (≥ 2 GEMMs and ≥ 2 reductions).
pub fn is_attention(graph: &Graph) -> bool {
    let gemms = graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Gemm { .. }))
        .count();
    let reduces = graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Reduce { .. }))
        .count();
    gemms >= 2 && reduces >= 2
}

/// Heuristic: a row-normalization subgraph (no GEMMs, ≥ 1 reduction).
pub fn is_row_norm(graph: &Graph) -> bool {
    let gemms = graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Gemm { .. }))
        .count();
    let reduces = graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Reduce { .. }))
        .count();
    gemms == 0 && reduces >= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_models::subgraphs;

    #[test]
    fn support_matrix_matches_paper() {
        assert!(Engine::NnFusion.supports(Arch::Volta));
        assert!(!Engine::NnFusion.supports(Arch::Ampere));
        assert!(!Engine::NnFusion.supports(Arch::Hopper));
        assert!(Engine::BladeDisc.supports(Arch::Ampere));
        assert!(!Engine::BladeDisc.supports(Arch::Hopper));
        // Every engine supports at least one architecture.
        for e in Engine::all() {
            assert!(Arch::all().iter().any(|&a| e.supports(a)), "{}", e.name());
        }
    }

    #[test]
    fn pattern_detection() {
        assert!(is_attention(&subgraphs::mha(1, 1, 128, 64)));
        assert!(!is_attention(&subgraphs::layernorm(64, 128)));
        assert!(is_row_norm(&subgraphs::layernorm(64, 128)));
        assert!(is_row_norm(&subgraphs::rmsnorm(64, 128)));
        assert!(!is_row_norm(&subgraphs::mlp_stack(2, 64, 128)));
    }

    #[test]
    fn engines_compile_attention_correctly() {
        let g = subgraphs::mha(1, 1, 128, 32);
        let bindings = g.random_bindings(11);
        let expect = g.execute(&bindings).unwrap();
        for e in Engine::all() {
            let p = e.compile(Arch::Ampere, &g).unwrap();
            let got = p.execute(&bindings).unwrap();
            assert!(
                got[0].allclose(&expect[0], 1e-3),
                "{} produced wrong numerics",
                e.name()
            );
        }
    }

    #[test]
    fn pytorch_launches_most_kernels() {
        // PyTorch eager fuses the softmax chain into one framework op,
        // so MHA is gemm, scale, softmax, gemm = 4 kernels.
        let g = subgraphs::mha(1, 1, 256, 64);
        let py = Engine::PyTorch.compile(Arch::Ampere, &g).unwrap();
        let sf = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
        assert_eq!(py.kernels.len(), 4);
        assert_eq!(sf.kernels.len(), 1);
        // A structure without framework-level composites stays 1:1.
        let ln = subgraphs::layernorm(64, 128);
        let py_ln = Engine::PyTorch.compile(Arch::Ampere, &ln).unwrap();
        assert_eq!(py_ln.kernels.len(), ln.ops().len());
    }

    #[test]
    fn bladedisc_leaves_gemms_unfused() {
        let g = subgraphs::mha(1, 1, 256, 64);
        let p = Engine::BladeDisc.compile(Arch::Ampere, &g).unwrap();
        // Two standalone GEMM kernels plus MI groups.
        assert!(p.kernels.len() >= 3);
        for k in &p.kernels {
            let gemms = k
                .graph
                .ops()
                .iter()
                .filter(|o| matches!(o.kind, OpKind::Gemm { .. }))
                .count();
            assert!(gemms <= 1, "BladeDISC must not fuse multiple GEMMs");
            if gemms == 1 {
                assert_eq!(k.graph.ops().len(), 1);
            }
        }
    }
}
