//! Manually-tuned library kernels as fixed-configuration compilations.
//!
//! The defining property of a hand-tuned library (paper §6.1) is that an
//! expert chose one dataflow and one set of block shapes per kernel; the
//! shapes are excellent on the workloads the expert tuned for and merely
//! adequate elsewhere. We reproduce that by running the same scheduler
//! with auto-tuning disabled and the expert's block sizes pinned.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use spacefusion::compiler::{CompileOptions, CompiledProgram, Compiler, FusionPolicy};
use spacefusion::sched::SlicingOptions;
use spacefusion::Result;

/// Compiles `graph` as a single fused kernel with pinned block sizes.
///
/// `spatial` pins every spatially sliced dimension; `temporal` pins the
/// intra-block size (and enables temporal slicing).
pub fn compile_fixed(
    arch: Arch,
    graph: &Graph,
    spatial: usize,
    temporal: Option<usize>,
) -> Result<CompiledProgram> {
    let opts = CompileOptions {
        policy: FusionPolicy::SpaceFusion,
        autotune: false,
        slicing: SlicingOptions {
            enable_temporal: temporal.is_some(),
            enable_uta: true,
            fixed_spatial_block: Some(spatial),
            fixed_temporal_block: temporal,
            max_configs: 4,
            ..Default::default()
        },
        alpha: 0.25,
        ..Default::default()
    };
    Compiler::new(arch, opts).compile(graph)
}

/// FlashAttention (v1) CUDA kernel: 64×64 tiles, online softmax.
///
/// Unsupported on Volta, as in the paper ("FlashAttention's CUDA
/// implementation lacks compatibility with Volta").
pub fn flash_attention_v1(arch: Arch, mha: &Graph) -> Option<Result<CompiledProgram>> {
    if arch == Arch::Volta {
        return None;
    }
    Some(compile_fixed(arch, mha, 64, Some(64)))
}

/// FlashAttention 2: larger key/value tiles (128) for fewer rescaling
/// steps and less re-read traffic, keeping the v1 query-block
/// parallelism.
///
/// Also SM80+ only.
pub fn flash_attention_v2(arch: Arch, mha: &Graph) -> Option<Result<CompiledProgram>> {
    if arch == Arch::Volta {
        return None;
    }
    Some(compile_fixed(arch, mha, 64, Some(128)))
}

/// The OpenAI-Triton port of FlashAttention: hand-tuned 64×64 blocks,
/// available on every architecture.
pub fn flash_attention_triton(arch: Arch, mha: &Graph) -> Result<CompiledProgram> {
    compile_fixed(arch, mha, 64, Some(64))
}

/// `torch.nn.functional.layer_norm`'s fused CUDA kernel: a generic
/// row-parallel kernel with 4-row blocks.
pub fn pytorch_op_layernorm(arch: Arch, ln: &Graph) -> Result<CompiledProgram> {
    compile_fixed(arch, ln, 4, None)
}

/// NVIDIA Apex fused LayerNorm: persistent one-row blocks tuned for
/// large hidden sizes.
pub fn apex_layernorm(arch: Arch, ln: &Graph) -> Result<CompiledProgram> {
    compile_fixed(arch, ln, 1, None)
}

/// The Triton tutorial LayerNorm: 16-row blocks (good mid-sizes, runs
/// out of shared memory head-room at very large rows).
pub fn triton_layernorm(arch: Arch, ln: &Graph) -> Result<CompiledProgram> {
    compile_fixed(arch, ln, 16, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_models::subgraphs;

    #[test]
    fn flash_attention_is_absent_on_volta() {
        let g = subgraphs::mha(1, 1, 256, 64);
        assert!(flash_attention_v1(Arch::Volta, &g).is_none());
        assert!(flash_attention_v2(Arch::Volta, &g).is_none());
        assert!(flash_attention_v1(Arch::Ampere, &g).is_some());
    }

    #[test]
    fn flash_attention_fuses_to_one_temporally_sliced_kernel() {
        let g = subgraphs::mha(1, 1, 2048, 64);
        let p = flash_attention_v1(Arch::Ampere, &g).unwrap().unwrap();
        assert_eq!(p.kernels.len(), 1);
        let s = &p.kernels[0].schedule;
        assert_eq!(s.spatial[0].1, 64);
        assert_eq!(s.temporal.as_ref().unwrap().block, 64);
    }

    #[test]
    fn flash_attention_v2_uses_larger_temporal_tiles() {
        let g = subgraphs::mha(1, 1, 2048, 64);
        let p = flash_attention_v2(Arch::Hopper, &g).unwrap().unwrap();
        assert_eq!(p.kernels[0].schedule.temporal.as_ref().unwrap().block, 128);
    }

    #[test]
    fn flash_attention_matches_reference_numerics() {
        let g = subgraphs::mha(1, 1, 512, 64);
        let p = flash_attention_triton(Arch::Ampere, &g).unwrap();
        let bindings = g.random_bindings(7);
        let expect = g.execute(&bindings).unwrap();
        let got = p.execute(&bindings).unwrap();
        assert!(got[0].allclose(&expect[0], 1e-3));
    }

    #[test]
    fn layernorm_flavours_fuse_and_match() {
        let g = subgraphs::layernorm(64, 256);
        let bindings = g.random_bindings(8);
        let expect = g.execute(&bindings).unwrap();
        for p in [
            pytorch_op_layernorm(Arch::Ampere, &g).unwrap(),
            apex_layernorm(Arch::Ampere, &g).unwrap(),
            triton_layernorm(Arch::Ampere, &g).unwrap(),
        ] {
            assert_eq!(p.kernels.len(), 1);
            let got = p.execute(&bindings).unwrap();
            assert!(got[0].allclose(&expect[0], 1e-3));
        }
    }

    #[test]
    fn fixed_configs_pin_block_sizes() {
        let g = subgraphs::layernorm(256, 512);
        let p = triton_layernorm(Arch::Ampere, &g).unwrap();
        assert_eq!(p.kernels[0].schedule.spatial[0].1, 16);
        let p = apex_layernorm(Arch::Ampere, &g).unwrap();
        assert_eq!(p.kernels[0].schedule.spatial[0].1, 1);
    }
}
