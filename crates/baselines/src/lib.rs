//! Baseline systems of the SpaceFusion evaluation.
//!
//! Every baseline runs on the same simulator and the same kernel
//! machinery as SpaceFusion; what differs is *what it is allowed to fuse
//! and how it picks block shapes* — exactly the axes Table 2 of the paper
//! compares:
//!
//! * [`handtuned`] — manually-tuned library kernels as fixed-configuration
//!   compilations: FlashAttention v1/v2 and the Triton port (expert block
//!   sizes, no tuning), and the three fused LayerNorm flavours of Fig. 12
//!   (PyTorch Op, NVIDIA Apex, LN-Triton).
//! * [`engines`] — end-to-end inference engines as composition rules:
//!   PyTorch eager (unfused), TensorRT (library composition), Kernl
//!   (Triton attention/LN + eager GEMMs), BladeDISC/AStitch
//!   (memory-intensive-only fusion), NNFusion/Welder (tile-graph fusion
//!   without dependency transformation), and SpaceFusion itself.
//!
//! Architecture support matches the paper: FlashAttention's CUDA kernels
//! do not run on Volta, NNFusion results exist only on Volta, and
//! BladeDISC does not support Hopper.

pub mod engines;
pub mod handtuned;

pub use engines::Engine;
pub use handtuned::{
    apex_layernorm, compile_fixed, flash_attention_triton, flash_attention_v1, flash_attention_v2,
    pytorch_op_layernorm, triton_layernorm,
};
