//! Deterministic GPU performance model for the SpaceFusion reproduction.
//!
//! The paper evaluates on NVIDIA V100 (Volta), A100 (Ampere) and H100
//! (Hopper). With no GPU in the loop, this crate substitutes a
//! deterministic performance model that preserves the properties the
//! paper's results depend on:
//!
//! * per-architecture resource budgets (shared memory and registers per
//!   block) that gate schedule feasibility (paper §5.1),
//! * FP16 tensor-core peak ratios of 1 : 2.79 : 6.75 across the three
//!   architectures (paper §6.4),
//! * a memory hierarchy — per-SM L1, shared L2, DRAM — simulated with
//!   set-associative LRU caches over the tile-level access streams of
//!   generated kernels (paper §6.3's L1/L2 miss and data-movement
//!   analysis), and
//! * per-kernel launch overhead, so fusing kernels has the CPU-side
//!   benefit the paper observes.
//!
//! Two fidelity levels are offered: [`GpuArch::kernel_time_us`] is the
//! cheap analytic roofline used inside the auto-tuner, and [`Profiler`]
//! replays full access streams through the cache hierarchy for the
//! detailed measurements reported by the benchmark harness.

pub mod arch;
pub mod cache;
pub mod occupancy;
pub mod profiler;

pub use arch::{Arch, GpuArch, ResourceKind, ResourceViolation};
pub use cache::Cache;
pub use occupancy::{occupancy, Occupancy};
pub use profiler::{BufId, KernelCost, Profiler, ProgramStats, TileAccess};
