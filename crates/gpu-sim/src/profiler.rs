//! Access-stream profiling through the simulated memory hierarchy.
//!
//! Kernel generators (SpaceFusion's codegen and all baselines) replay the
//! global-memory access stream of each kernel into a [`Profiler`]: buffer
//! allocations, block boundaries, tile loads/stores, and FLOP counts. The
//! profiler routes accesses through a per-block L1 and a persistent shared
//! L2 (both set-associative LRU), producing the L1/L2 miss counts and the
//! DRAM data movement reported in the paper's Fig. 15, and per-kernel
//! [`KernelCost`] records that feed the timing model.

use crate::arch::GpuArch;
use crate::cache::Cache;

/// Handle of a global-memory buffer allocated in the profiler's address
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

/// A 2-D tile access to a row-major buffer.
///
/// Covers `rows` rows of `row_bytes` contiguous bytes each, `row_stride`
/// bytes apart, starting `offset` bytes into the buffer.
#[derive(Debug, Clone, Copy)]
pub struct TileAccess {
    /// Target buffer.
    pub buf: BufId,
    /// Byte offset of the first row.
    pub offset: u64,
    /// Contiguous bytes per row.
    pub row_bytes: u64,
    /// Number of rows.
    pub rows: u64,
    /// Byte distance between row starts.
    pub row_stride: u64,
    /// Whether this is a store.
    pub write: bool,
}

/// Aggregated cost of one simulated kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Kernel name (for reports).
    pub name: String,
    /// Number of thread blocks launched.
    pub grid: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes requested from global memory (reads, before caches).
    pub global_read_bytes: u64,
    /// Bytes stored to global memory.
    pub global_write_bytes: u64,
    /// Bytes actually read from DRAM (L2 read misses × line).
    pub dram_read_bytes: u64,
    /// Bytes actually written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes served by L2 (all L2 traffic).
    pub l2_bytes: u64,
    /// Shared-memory footprint per block.
    pub smem_per_block: u64,
    /// Register footprint per block.
    pub regs_per_block: u64,
}

impl KernelCost {
    /// An empty cost record with a name.
    pub fn named(name: impl Into<String>) -> Self {
        KernelCost {
            name: name.into(),
            grid: 1,
            flops: 0,
            global_read_bytes: 0,
            global_write_bytes: 0,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            l2_bytes: 0,
            smem_per_block: 0,
            regs_per_block: 0,
        }
    }
}

/// Whole-program counters accumulated across kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramStats {
    /// L1 accesses.
    pub l1_accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved between L2 and DRAM (reads).
    pub dram_read_bytes: u64,
    /// Bytes moved between L2 and DRAM (writes).
    pub dram_write_bytes: u64,
    /// Number of kernels launched.
    pub kernels: u64,
}

impl ProgramStats {
    /// Total DRAM traffic ("data movement" in Fig. 15).
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Replays kernel access streams through L1/L2/DRAM.
///
/// # Examples
///
/// ```
/// use sf_gpu_sim::{GpuArch, Profiler};
/// let arch = GpuArch::ampere();
/// let mut p = Profiler::new(&arch);
/// let buf = p.alloc(1 << 20);
/// p.begin_kernel("copy", 16, 0, 0);
/// p.begin_block();
/// p.load_tile(buf, 0, 4096, 1, 4096);
/// p.flops(100);
/// p.end_kernel();
/// assert_eq!(p.stats().kernels, 1);
/// ```
pub struct Profiler {
    arch: GpuArch,
    l1: Cache,
    l2: Cache,
    next_addr: u64,
    buf_base: Vec<u64>,
    buf_len: Vec<u64>,
    stats: ProgramStats,
    kernels: Vec<KernelCost>,
    current: Option<KernelCost>,
    l1_base: (u64, u64),
    l2_base: (u64, u64),
}

impl Profiler {
    /// Creates a profiler for one architecture. L1 models the per-SM
    /// cache (flushed at block boundaries, since successive blocks land on
    /// arbitrary SMs); L2 persists across kernels, capturing
    /// inter-kernel reuse of intermediates.
    pub fn new(arch: &GpuArch) -> Self {
        let l1 = Cache::new(arch.l1_bytes, arch.cache_line, 4);
        let l2 = Cache::new(arch.l2_bytes, arch.cache_line, 16);
        Profiler {
            arch: arch.clone(),
            l1,
            l2,
            next_addr: 0,
            buf_base: Vec::new(),
            buf_len: Vec::new(),
            stats: ProgramStats::default(),
            kernels: Vec::new(),
            current: None,
            l1_base: (0, 0),
            l2_base: (0, 0),
        }
    }

    /// Architecture being simulated.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Allocates a global buffer, 256-byte aligned.
    pub fn alloc(&mut self, bytes: u64) -> BufId {
        let id = BufId(self.buf_base.len());
        self.buf_base.push(self.next_addr);
        self.buf_len.push(bytes);
        self.next_addr += bytes.div_ceil(256) * 256;
        id
    }

    /// Begins a kernel.
    ///
    /// # Panics
    ///
    /// Panics if a kernel is already open.
    pub fn begin_kernel(
        &mut self,
        name: &str,
        grid: u64,
        smem_per_block: u64,
        regs_per_block: u64,
    ) {
        assert!(
            self.current.is_none(),
            "begin_kernel while a kernel is open"
        );
        let mut k = KernelCost::named(name);
        k.grid = grid;
        k.smem_per_block = smem_per_block;
        k.regs_per_block = regs_per_block;
        self.current = Some(k);
        self.l1.flush();
    }

    /// Begins a thread block: flushes the L1 (blocks run on arbitrary SMs,
    /// so modeling a cold L1 per block is the deterministic choice).
    pub fn begin_block(&mut self) {
        self.l1.flush();
    }

    /// Records FLOPs executed by the current kernel.
    pub fn flops(&mut self, n: u64) {
        if let Some(k) = self.current.as_mut() {
            k.flops += n;
        }
    }

    /// Loads a 2-D tile from global memory through L1 then L2.
    pub fn load_tile(
        &mut self,
        buf: BufId,
        offset: u64,
        row_bytes: u64,
        rows: u64,
        row_stride: u64,
    ) {
        self.tile(TileAccess {
            buf,
            offset,
            row_bytes,
            rows,
            row_stride,
            write: false,
        });
    }

    /// Stores a 2-D tile to global memory (write-through to DRAM).
    pub fn store_tile(
        &mut self,
        buf: BufId,
        offset: u64,
        row_bytes: u64,
        rows: u64,
        row_stride: u64,
    ) {
        self.tile(TileAccess {
            buf,
            offset,
            row_bytes,
            rows,
            row_stride,
            write: true,
        });
    }

    /// Replays one tile access.
    pub fn tile(&mut self, t: TileAccess) {
        let Some(k) = self.current.as_mut() else {
            return;
        };
        let base = self.buf_base[t.buf.0] + t.offset;
        let bytes = t.row_bytes * t.rows;
        let line = self.arch.cache_line;
        if t.write {
            k.global_write_bytes += bytes;
            // Write-through model: stores traverse L2 and land in DRAM.
            for r in 0..t.rows {
                let addr = base + r * t.row_stride;
                self.l2.access_range(addr, t.row_bytes);
            }
            k.dram_write_bytes += bytes;
            k.l2_bytes += bytes;
        } else {
            k.global_read_bytes += bytes;
            for r in 0..t.rows {
                let addr = base + r * t.row_stride;
                let l1_missed = self.l1.access_range(addr, t.row_bytes);
                // Only L1 misses reach L2.
                if l1_missed > 0 {
                    let miss_bytes = l1_missed * line;
                    // Touch the missed portion in L2. Approximation: the
                    // missed lines of a row are contiguous in the common
                    // streaming case, so touch the leading span.
                    let l2_missed = self
                        .l2
                        .access_range(addr, miss_bytes.min(t.row_bytes.max(line)));
                    k.l2_bytes += miss_bytes;
                    k.dram_read_bytes += l2_missed * line;
                }
            }
        }
    }

    /// Ends the current kernel and records its cost.
    ///
    /// # Panics
    ///
    /// Panics if no kernel is open.
    pub fn end_kernel(&mut self) {
        let k = self
            .current
            .take()
            .expect("end_kernel without begin_kernel");
        self.stats.kernels += 1;
        self.stats.l1_accesses += self.l1.accesses() - self.l1_base.0;
        self.stats.l1_misses += self.l1.misses() - self.l1_base.1;
        self.stats.l2_accesses += self.l2.accesses() - self.l2_base.0;
        self.stats.l2_misses += self.l2.misses() - self.l2_base.1;
        self.l1_base = (self.l1.accesses(), self.l1.misses());
        self.l2_base = (self.l2.accesses(), self.l2.misses());
        self.stats.dram_read_bytes += k.dram_read_bytes;
        self.stats.dram_write_bytes += k.dram_write_bytes;
        self.kernels.push(k);
    }

    /// Program-level counters.
    pub fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Per-kernel cost records.
    pub fn kernels(&self) -> &[KernelCost] {
        &self.kernels
    }

    /// Total simulated program time (microseconds).
    pub fn total_time_us(&self) -> f64 {
        self.arch.program_time_us(&self.kernels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Profiler {
        Profiler::new(&GpuArch::ampere())
    }

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut p = setup();
        let a = p.alloc(100);
        let b = p.alloc(100);
        assert_ne!(p.buf_base[a.0], p.buf_base[b.0]);
        assert_eq!(p.buf_base[b.0] % 256, 0);
    }

    #[test]
    fn read_twice_hits_l2_second_time() {
        let mut p = setup();
        let buf = p.alloc(1 << 20);
        p.begin_kernel("k1", 1, 0, 0);
        p.begin_block();
        p.load_tile(buf, 0, 1 << 16, 1, 0);
        p.end_kernel();
        let first_dram = p.stats().dram_read_bytes;
        assert_eq!(first_dram, 1 << 16);

        p.begin_kernel("k2", 1, 0, 0);
        p.begin_block();
        p.load_tile(buf, 0, 1 << 16, 1, 0);
        p.end_kernel();
        // Working set fits in L2: the second kernel reads from L2 only.
        assert_eq!(p.stats().dram_read_bytes, first_dram);
    }

    #[test]
    fn l1_is_cold_per_block() {
        let mut p = setup();
        let buf = p.alloc(1 << 20);
        p.begin_kernel("k", 2, 0, 0);
        p.begin_block();
        p.load_tile(buf, 0, 4096, 1, 0);
        let m1 = p.l1.misses();
        p.begin_block();
        p.load_tile(buf, 0, 4096, 1, 0);
        p.end_kernel();
        // Second block misses L1 again (flushed) even though L2 hits.
        assert_eq!(p.l1.misses(), 2 * m1);
    }

    #[test]
    fn writes_count_as_dram_traffic() {
        let mut p = setup();
        let buf = p.alloc(1 << 20);
        p.begin_kernel("w", 1, 0, 0);
        p.begin_block();
        p.store_tile(buf, 0, 8192, 4, 8192);
        p.end_kernel();
        assert_eq!(p.stats().dram_write_bytes, 4 * 8192);
        assert_eq!(p.kernels()[0].global_write_bytes, 4 * 8192);
    }

    #[test]
    fn strided_tile_touches_each_row() {
        let mut p = setup();
        let buf = p.alloc(1 << 20);
        p.begin_kernel("t", 1, 0, 0);
        p.begin_block();
        // 16 rows of 128 bytes, stride 1024: 16 distinct lines.
        p.load_tile(buf, 0, 128, 16, 1024);
        p.end_kernel();
        assert_eq!(p.stats().dram_read_bytes, 16 * 128);
    }

    #[test]
    fn flops_accumulate_per_kernel() {
        let mut p = setup();
        p.begin_kernel("f", 8, 0, 0);
        p.begin_block();
        p.flops(100);
        p.flops(23);
        p.end_kernel();
        assert_eq!(p.kernels()[0].flops, 123);
    }

    #[test]
    #[should_panic(expected = "begin_kernel while a kernel is open")]
    fn nested_kernels_panic() {
        let mut p = setup();
        p.begin_kernel("a", 1, 0, 0);
        p.begin_kernel("b", 1, 0, 0);
    }

    #[test]
    fn stats_track_kernel_count_and_time() {
        let mut p = setup();
        for i in 0..3 {
            p.begin_kernel(&format!("k{i}"), 256, 0, 0);
            p.begin_block();
            p.flops(1 << 20);
            p.end_kernel();
        }
        assert_eq!(p.stats().kernels, 3);
        assert!(p.total_time_us() >= 15.0); // at least 3 launches.
    }
}
