//! GPU architecture descriptions and the analytic timing model.

use crate::profiler::KernelCost;

/// The three evaluated architectures (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// NVIDIA V100, SM70.
    Volta,
    /// NVIDIA A100, SM80.
    Ampere,
    /// NVIDIA H100, SM90.
    Hopper,
}

impl Arch {
    /// All architectures, in the paper's presentation order.
    pub fn all() -> [Arch; 3] {
        [Arch::Volta, Arch::Ampere, Arch::Hopper]
    }

    /// The architecture's configuration.
    pub fn config(self) -> GpuArch {
        match self {
            Arch::Volta => GpuArch::volta(),
            Arch::Ampere => GpuArch::ampere(),
            Arch::Hopper => GpuArch::hopper(),
        }
    }

    /// Stable lowercase name, shared by the `sfc` flag vocabulary and
    /// the serve protocol.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Volta => "volta",
            Arch::Ampere => "ampere",
            Arch::Hopper => "hopper",
        }
    }

    /// Inverse of [`name`](Arch::name).
    pub fn parse(s: &str) -> Option<Arch> {
        Arch::all().into_iter().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Volta => write!(f, "Volta"),
            Arch::Ampere => write!(f, "Ampere"),
            Arch::Hopper => write!(f, "Hopper"),
        }
    }
}

/// A per-block hardware resource that schedules are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Shared memory allocatable to one thread block.
    SharedMemory,
    /// Register-file bytes allocatable to one thread block.
    Registers,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::SharedMemory => write!(f, "shared memory"),
            ResourceKind::Registers => write!(f, "registers"),
        }
    }
}

/// One exceeded per-block budget: which resource, how much the block
/// uses, and the hardware limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceViolation {
    /// The exceeded resource.
    pub resource: ResourceKind,
    /// Bytes the block uses.
    pub used: u64,
    /// The architecture's per-block budget, bytes.
    pub limit: u64,
}

/// Hardware resource configuration (the paper's `RCfg`).
///
/// Shared-memory and register budgets gate schedule feasibility in
/// resource-aware slicing (§5.1); the throughput numbers drive the
/// roofline timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Marketing / paper name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u64,
    /// FP16 tensor-core peak, in FLOP/s.
    pub fp16_flops: f64,
    /// DRAM bandwidth, bytes/s.
    pub dram_bps: f64,
    /// L2 bandwidth, bytes/s (several × DRAM).
    pub l2_bps: f64,
    /// L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L1/shared capacity per SM, bytes.
    pub l1_bytes: u64,
    /// Maximum shared memory allocatable to one thread block, bytes.
    pub smem_per_block: u64,
    /// Maximum register file bytes allocatable to one thread block.
    pub regs_per_block: u64,
    /// Cache line size, bytes.
    pub cache_line: u64,
    /// Kernel launch overhead, microseconds (CPU-side cost per kernel).
    pub launch_overhead_us: f64,
    /// Fixed scheduling/prologue cost per thread block, microseconds.
    /// Penalizes degenerate schedules with huge grids of tiny blocks.
    pub block_overhead_us: f64,
    /// Fraction of FP16 peak achievable by generated GEMM inner loops.
    pub compute_efficiency: f64,
}

impl GpuArch {
    /// V100-SXM2 32 GB (Volta).
    pub fn volta() -> Self {
        GpuArch {
            name: "V100 (Volta)",
            sm_count: 80,
            fp16_flops: 112e12,
            dram_bps: 900e9,
            l2_bps: 2.7e12,
            l2_bytes: 6 << 20,
            l1_bytes: 128 << 10,
            smem_per_block: 96 << 10,
            regs_per_block: 256 << 10,
            cache_line: 128,
            launch_overhead_us: 5.0,
            block_overhead_us: 0.2,
            compute_efficiency: 0.65,
        }
    }

    /// A100-SXM4 80 GB (Ampere).
    pub fn ampere() -> Self {
        GpuArch {
            name: "A100 (Ampere)",
            sm_count: 108,
            fp16_flops: 312e12,
            dram_bps: 2039e9,
            l2_bps: 6.1e12,
            l2_bytes: 40 << 20,
            l1_bytes: 192 << 10,
            smem_per_block: 164 << 10,
            regs_per_block: 256 << 10,
            cache_line: 128,
            launch_overhead_us: 5.0,
            block_overhead_us: 0.2,
            compute_efficiency: 0.65,
        }
    }

    /// H100-SXM5 80 GB (Hopper).
    pub fn hopper() -> Self {
        GpuArch {
            name: "H100 (Hopper)",
            sm_count: 132,
            fp16_flops: 756e12,
            dram_bps: 3350e9,
            l2_bps: 10e12,
            l2_bytes: 50 << 20,
            l1_bytes: 256 << 10,
            smem_per_block: 228 << 10,
            regs_per_block: 256 << 10,
            cache_line: 128,
            launch_overhead_us: 5.0,
            block_overhead_us: 0.2,
            compute_efficiency: 0.65,
        }
    }

    /// Whether a block with the given footprint fits on this architecture.
    pub fn block_fits(&self, smem_bytes: u64, reg_bytes: u64) -> bool {
        smem_bytes <= self.smem_per_block && reg_bytes <= self.regs_per_block
    }

    /// Every per-block resource limit the given footprint exceeds,
    /// with the amount used and the hardware budget. Empty when the
    /// block fits (the structured form of [`block_fits`] for
    /// diagnostics).
    ///
    /// [`block_fits`]: GpuArch::block_fits
    pub fn resource_violations(&self, smem_bytes: u64, reg_bytes: u64) -> Vec<ResourceViolation> {
        let mut v = Vec::new();
        if smem_bytes > self.smem_per_block {
            v.push(ResourceViolation {
                resource: ResourceKind::SharedMemory,
                used: smem_bytes,
                limit: self.smem_per_block,
            });
        }
        if reg_bytes > self.regs_per_block {
            v.push(ResourceViolation {
                resource: ResourceKind::Registers,
                used: reg_bytes,
                limit: self.regs_per_block,
            });
        }
        v
    }

    /// Fraction of peak throughput usable given the grid size.
    ///
    /// A kernel with fewer blocks than SMs cannot use the whole chip; this
    /// is the mechanism behind the paper's batch-size-1 observations
    /// (§6.2: Llama2's 32 parallel heads give PyTorch a stronger baseline;
    /// §6.4(b): gains shrink as input grows without parallelism).
    pub fn parallel_utilization(&self, grid: u64) -> f64 {
        if grid == 0 {
            return 1.0;
        }
        // Each SM wants ~2 blocks in flight to hide latency.
        let want = (self.sm_count * 2) as f64;
        ((grid as f64) / want).clamp(0.05, 1.0)
    }

    /// Fraction of peak memory bandwidth reachable at this grid size.
    ///
    /// Memory streams need concurrency just like compute: a handful of
    /// resident blocks cannot keep enough loads in flight to saturate
    /// DRAM — the occupancy effect split-K reduction schedules exist to
    /// fix (a decode kernel reading a long KV cache with one block per
    /// head leaves the memory system mostly idle). Bandwidth saturates
    /// well before compute does — about an eighth of the chip's
    /// resident-block capacity is enough — so this curve rises 8×
    /// faster than [`Self::parallel_utilization`] and never falls below
    /// it.
    pub fn memory_utilization(&self, grid: u64) -> f64 {
        if grid == 0 {
            return 1.0;
        }
        let saturate = (self.sm_count * 2) as f64 / 8.0;
        ((grid as f64) / saturate)
            .clamp(0.05, 1.0)
            .max(self.parallel_utilization(grid))
    }

    /// Analytic kernel time (microseconds): launch overhead plus a
    /// roofline over compute, DRAM, and L2 components.
    pub fn kernel_time_us(&self, cost: &KernelCost) -> f64 {
        let util = self.parallel_utilization(cost.grid);
        let mem_util = self.memory_utilization(cost.grid);
        let compute_s = cost.flops as f64 / (self.fp16_flops * self.compute_efficiency * util);
        let dram_s =
            (cost.dram_read_bytes + cost.dram_write_bytes) as f64 / (self.dram_bps * mem_util);
        let l2_s = cost.l2_bytes as f64 / (self.l2_bps * mem_util);
        // Per-block scheduling cost, amortized over the concurrent slots.
        let sched_s =
            cost.grid as f64 * self.block_overhead_us * 1e-6 / (self.sm_count as f64 * 2.0);
        self.launch_overhead_us + (compute_s.max(dram_s).max(l2_s).max(sched_s)) * 1e6
    }

    /// Total time of a multi-kernel program (microseconds).
    pub fn program_time_us(&self, kernels: &[KernelCost]) -> f64 {
        kernels.iter().map(|k| self.kernel_time_us(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_ratios_match_paper() {
        let v = GpuArch::volta().fp16_flops;
        let a = GpuArch::ampere().fp16_flops;
        let h = GpuArch::hopper().fp16_flops;
        assert!((a / v - 2.79).abs() < 0.02);
        assert!((h / v - 6.75).abs() < 0.02);
    }

    #[test]
    fn block_fit_gates_on_both_resources() {
        let a = GpuArch::ampere();
        assert!(a.block_fits(100 << 10, 100 << 10));
        assert!(!a.block_fits(200 << 10, 0));
        assert!(!a.block_fits(0, 300 << 10));
        // Volta has a smaller shared-memory budget than Ampere.
        assert!(!GpuArch::volta().block_fits(100 << 10, 0));
    }

    #[test]
    fn resource_violations_name_the_exceeded_budget() {
        let a = GpuArch::ampere();
        assert!(a.resource_violations(1 << 10, 1 << 10).is_empty());
        let v = a.resource_violations(a.smem_per_block + 1, a.regs_per_block + 1);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].resource, ResourceKind::SharedMemory);
        assert_eq!(v[0].limit, a.smem_per_block);
        assert_eq!(v[1].resource, ResourceKind::Registers);
        let smem_only = a.resource_violations(a.smem_per_block * 2, 0);
        assert_eq!(smem_only.len(), 1);
        assert!(!format!("{}", smem_only[0].resource).is_empty());
    }

    #[test]
    fn utilization_saturates() {
        let a = GpuArch::ampere();
        // A single block is clamped to the floor.
        assert_eq!(a.parallel_utilization(1), 0.05);
        assert_eq!(a.parallel_utilization(100_000), 1.0);
        // Half-occupied chip sits in between.
        let half = a.parallel_utilization(108);
        assert!(half > 0.05 && half < 1.0);
    }

    #[test]
    fn memory_bound_kernel_times_scale_with_bandwidth() {
        let cost = KernelCost {
            name: "memcpy".into(),
            grid: 10_000,
            flops: 0,
            global_read_bytes: 1 << 30,
            global_write_bytes: 1 << 30,
            dram_read_bytes: 1 << 30,
            dram_write_bytes: 1 << 30,
            l2_bytes: 2 << 30,
            smem_per_block: 0,
            regs_per_block: 0,
        };
        let tv = GpuArch::volta().kernel_time_us(&cost);
        let th = GpuArch::hopper().kernel_time_us(&cost);
        // Hopper has 3.7x the bandwidth; times should reflect that roughly.
        assert!(tv / th > 2.5, "tv={tv} th={th}");
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let cost = KernelCost::named("noop");
        let t = GpuArch::ampere().kernel_time_us(&cost);
        assert!((t - 5.0).abs() < 1e-2);
    }

    #[test]
    fn program_time_sums_kernels() {
        let k = KernelCost::named("noop");
        let t = GpuArch::ampere().program_time_us(&[k.clone(), k]);
        assert!((t - 10.0).abs() < 1e-2);
    }

    #[test]
    fn arch_enum_round_trip() {
        for a in Arch::all() {
            let c = a.config();
            assert!(c.sm_count > 0);
            assert!(!format!("{a}").is_empty());
        }
    }
}
