//! Set-associative LRU cache simulation.
//!
//! Caches are simulated at cache-line granularity over the 64-bit global
//! address space in which the profiler allocates tensor buffers. The
//! implementation favours throughput: each set is a small vector kept in
//! LRU order (most recent last), which beats pointer-chasing LRU lists at
//! the associativities GPUs use.

/// A set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    line_size: u64,
    assoc: usize,
    num_sets: u64,
    sets: Vec<Vec<u64>>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given line size and
    /// associativity. Capacity is rounded down to a whole number of sets;
    /// at least one set is always present.
    pub fn new(capacity_bytes: u64, line_size: u64, assoc: usize) -> Self {
        let lines = (capacity_bytes / line_size).max(assoc as u64);
        let num_sets = (lines / assoc as u64).max(1);
        Cache {
            line_size,
            assoc,
            num_sets,
            sets: vec![Vec::new(); num_sets as usize],
            accesses: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Resets contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.accesses = 0;
        self.misses = 0;
    }

    /// Resets contents but keeps counters (e.g. L1 flush between blocks).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Touches one line address; returns `true` on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.accesses += 1;
        let set = &mut self.sets[(line % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            let l = set.remove(pos);
            set.push(l);
            true
        } else {
            self.misses += 1;
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }

    /// Touches a byte range `[addr, addr+len)`; returns the number of
    /// missed lines.
    pub fn access_range(&mut self, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr / self.line_size;
        let last = (addr + len - 1) / self.line_size;
        let mut missed = 0;
        for line in first..=last {
            if !self.access_line(line) {
                missed += 1;
            }
        }
        missed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = Cache::new(1024, 64, 4);
        assert_eq!(c.access_range(0, 64), 1);
        assert_eq!(c.access_range(0, 64), 0);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn range_spanning_lines() {
        let mut c = Cache::new(4096, 64, 4);
        // 100..300 spans lines 1..=4 (4 lines).
        assert_eq!(c.access_range(100, 200), 4);
        assert_eq!(c.access_range(100, 200), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        // One set, associativity 2.
        let mut c = Cache::new(128, 64, 2);
        assert_eq!(c.num_sets, 1);
        c.access_line(0);
        c.access_line(1);
        c.access_line(0); // 0 becomes MRU; 1 is now LRU.
        c.access_line(2); // evicts 1.
        assert!(c.access_line(0), "0 should still be resident");
        assert!(!c.access_line(1), "1 should have been evicted");
    }

    #[test]
    fn capacity_misses_on_large_working_set() {
        let mut c = Cache::new(1024, 64, 4); // 16 lines.
                                             // Stream 64 distinct lines twice: second pass still misses.
        for pass in 0..2 {
            for i in 0..64u64 {
                c.access_line(i);
            }
            let _ = pass;
        }
        assert_eq!(c.misses(), 128);
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = Cache::new(4096, 64, 4); // 64 lines.
        for _ in 0..10 {
            for i in 0..8u64 {
                c.access_line(i);
            }
        }
        assert_eq!(c.misses(), 8);
    }

    #[test]
    fn flush_keeps_counters_reset_clears_them() {
        let mut c = Cache::new(1024, 64, 4);
        c.access_range(0, 256);
        let m = c.misses();
        c.flush();
        assert_eq!(c.misses(), m);
        assert!(c.misses() > 0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn zero_len_access_is_noop() {
        let mut c = Cache::new(1024, 64, 4);
        assert_eq!(c.access_range(0, 0), 0);
        assert_eq!(c.accesses(), 0);
    }
}
