//! Occupancy and wave analysis.
//!
//! The roofline in [`crate::arch`] folds parallelism into a utilization
//! factor; this module exposes the underlying quantities — how many
//! blocks co-reside on an SM given their shared-memory and register
//! footprints, how many waves a grid needs, and the wave-quantization
//! loss — for schedule diagnostics and the `schedule_explorer` example.

use crate::arch::GpuArch;

/// Occupancy of one kernel configuration on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Concurrent blocks per SM (0 when the block does not fit at all).
    pub blocks_per_sm: u64,
    /// Concurrent blocks on the whole device.
    pub concurrent_blocks: u64,
    /// Full waves needed for the grid.
    pub waves: u64,
    /// Fraction of the last wave that does useful work (1.0 when the
    /// grid divides evenly; small values indicate wave-quantization
    /// waste).
    pub tail_utilization: f64,
}

/// Hardware limit on co-resident blocks per SM, independent of
/// resources (CUDA's 16–32 depending on generation; we use 16).
pub const MAX_BLOCKS_PER_SM: u64 = 16;

/// Computes the occupancy of a kernel configuration.
///
/// `smem_per_block` / `regs_per_block` are the per-block footprints;
/// `grid` is the total number of blocks.
pub fn occupancy(arch: &GpuArch, grid: u64, smem_per_block: u64, regs_per_block: u64) -> Occupancy {
    if smem_per_block > arch.smem_per_block || regs_per_block > arch.regs_per_block {
        return Occupancy {
            blocks_per_sm: 0,
            concurrent_blocks: 0,
            waves: 0,
            tail_utilization: 0.0,
        };
    }
    // Per-SM capacity: L1-resident shared memory and the register file.
    let by_smem = if smem_per_block == 0 {
        MAX_BLOCKS_PER_SM
    } else {
        arch.l1_bytes / smem_per_block.max(1)
    };
    let by_regs = if regs_per_block == 0 {
        MAX_BLOCKS_PER_SM
    } else {
        arch.regs_per_block / regs_per_block.max(1)
    };
    let blocks_per_sm = by_smem.min(by_regs).clamp(1, MAX_BLOCKS_PER_SM);
    let concurrent = blocks_per_sm * arch.sm_count;
    let waves = grid.div_ceil(concurrent.max(1)).max(1);
    let tail = grid % concurrent.max(1);
    let tail_utilization = if grid == 0 || tail == 0 {
        1.0
    } else {
        // (For a single partial wave, tail == grid.)
        tail as f64 / concurrent as f64
    };
    Occupancy {
        blocks_per_sm,
        concurrent_blocks: concurrent,
        waves,
        tail_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_blocks_reach_the_hardware_cap() {
        let a = GpuArch::ampere();
        let o = occupancy(&a, 10_000, 1 << 10, 1 << 10);
        assert_eq!(o.blocks_per_sm, MAX_BLOCKS_PER_SM);
        assert_eq!(o.concurrent_blocks, MAX_BLOCKS_PER_SM * a.sm_count);
    }

    #[test]
    fn shared_memory_limits_residency() {
        let a = GpuArch::ampere(); // 192 KiB L1 per SM.
        let o = occupancy(&a, 10_000, 64 << 10, 1 << 10);
        assert_eq!(o.blocks_per_sm, 3);
    }

    #[test]
    fn registers_limit_residency() {
        let a = GpuArch::ampere(); // 256 KiB register budget.
        let o = occupancy(&a, 10_000, 1 << 10, 128 << 10);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn oversized_blocks_do_not_fit() {
        let a = GpuArch::volta();
        let o = occupancy(&a, 64, 128 << 10, 0);
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.waves, 0);
    }

    #[test]
    fn waves_and_tail() {
        let a = GpuArch::volta(); // 80 SMs.
                                  // One block per SM (96 KiB smem fills the 128 KiB L1 once).
        let o = occupancy(&a, 200, 96 << 10, 0);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.concurrent_blocks, 80);
        assert_eq!(o.waves, 3);
        // 200 = 2 full waves of 80 + tail of 40.
        assert!((o.tail_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_partial_wave() {
        let a = GpuArch::volta();
        let o = occupancy(&a, 40, 96 << 10, 0);
        assert_eq!(o.waves, 1);
        assert!((o.tail_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn even_grid_has_no_tail_loss() {
        let a = GpuArch::volta();
        let o = occupancy(&a, 160, 96 << 10, 0);
        assert_eq!(o.waves, 2);
        assert_eq!(o.tail_utilization, 1.0);
    }
}
