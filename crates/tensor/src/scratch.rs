//! Scratch-buffer pool for the execution engine.
//!
//! The kernel interpreter produces short-lived intermediate tensors at a
//! high rate: one per operator per spatial block per temporal tile. A
//! [`ScratchPool`] recycles those `Vec<f32>` buffers so steady-state
//! execution performs no heap allocation — a worker thread owns one pool
//! and drains its block-local tensors back into it after every block and
//! tile.
//!
//! Buffers handed out by [`take`](ScratchPool::take) are always
//! zero-filled, so pooled and fresh buffers are indistinguishable and
//! results stay bit-identical with pooling on or off.

use crate::dtype::DType;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Maximum number of free buffers retained per pool; beyond this,
/// recycled buffers are dropped.
const MAX_FREE: usize = 64;

/// A recycling pool of `f32` scratch buffers.
///
/// # Examples
///
/// ```
/// use sf_tensor::ScratchPool;
/// let mut pool = ScratchPool::new();
/// let buf = pool.take(16);
/// assert_eq!(buf.len(), 16);
/// pool.recycle(buf);
/// // The next take of a compatible size reuses the same storage.
/// let again = pool.take(8);
/// assert_eq!(again.len(), 8);
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<Vec<f32>>,
    enabled: bool,
    hits: u64,
}

impl ScratchPool {
    /// A pool that recycles buffers.
    pub fn new() -> Self {
        ScratchPool {
            free: Vec::new(),
            enabled: true,
            hits: 0,
        }
    }

    /// A pool that always allocates fresh buffers and drops recycled
    /// ones (used by the plain `&Tensor` reference operators).
    pub fn disabled() -> Self {
        ScratchPool {
            free: Vec::new(),
            enabled: false,
            hits: 0,
        }
    }

    /// Number of `take` calls served from recycled storage.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hands out a zero-filled buffer of `volume` elements, reusing
    /// recycled storage when possible.
    pub fn take(&mut self, volume: usize) -> Vec<f32> {
        if self.enabled {
            // Prefer a buffer whose capacity already covers the request;
            // otherwise grow the most recently recycled one.
            let pos =
                self.free
                    .iter()
                    .position(|b| b.capacity() >= volume)
                    .or(if self.free.is_empty() {
                        None
                    } else {
                        Some(self.free.len() - 1)
                    });
            if let Some(pos) = pos {
                let mut buf = self.free.swap_remove(pos);
                self.hits += 1;
                crate::alloc_stats::record_pool_hit();
                buf.clear();
                buf.resize(volume, 0.0);
                return buf;
            }
            crate::alloc_stats::record_pool_miss();
        }
        crate::alloc_stats::record_alloc();
        vec![0.0; volume]
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if self.enabled && buf.capacity() > 0 && self.free.len() < MAX_FREE {
            self.free.push(buf);
        }
    }

    /// Returns a tensor's data buffer to the pool for reuse.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_data());
    }

    /// Builds a zero-filled tensor backed by pooled storage.
    pub fn tensor(&mut self, shape: Shape, dtype: DType) -> Tensor {
        let data = self.take(shape.volume());
        Tensor::from_data(shape, dtype, data).expect("pooled buffer length matches volume")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused_and_zeroed() {
        let mut pool = ScratchPool::new();
        let mut buf = pool.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        pool.recycle(buf);
        let again = pool.take(4);
        assert_eq!(again, vec![0.0; 4]);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn growing_take_reuses_largest() {
        let mut pool = ScratchPool::new();
        pool.recycle(vec![0.0; 4]);
        let big = pool.take(16);
        assert_eq!(big.len(), 16);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let mut pool = ScratchPool::disabled();
        pool.recycle(vec![0.0; 8]);
        let b = pool.take(8);
        assert_eq!(b.len(), 8);
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn pool_tensor_round_trip() {
        let mut pool = ScratchPool::new();
        let t = pool.tensor(Shape::new(vec![2, 3]), DType::F32);
        assert_eq!(t.data(), &[0.0; 6]);
        pool.recycle_tensor(t);
        assert_eq!(pool.take(6).len(), 6);
        assert_eq!(pool.hits(), 1);
    }
}
