//! Tensor substrate for the SpaceFusion reproduction.
//!
//! This crate provides the dense-tensor data structures and the CPU
//! *reference* implementations of every operator that appears in the
//! paper's workloads (GEMM, reductions, broadcasts, element-wise math, and
//! the composite operators Softmax / LayerNorm / RMSNorm built from them).
//!
//! The reference implementations serve two roles:
//!
//! 1. They define the ground-truth numerics that every fused kernel
//!    produced by the SpaceFusion scheduler must reproduce.
//! 2. They back the "PyTorch eager" unfused baseline of the evaluation.
//!
//! Values are stored as `f32`; the [`DType`] only affects the *byte size*
//! used by the GPU performance model (the paper evaluates in FP16, so most
//! workloads use [`DType::F16`] which occupies two bytes per element).

pub mod alloc_stats;
pub mod compare;
pub mod dtype;
pub mod error;
pub mod ops;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod tensor;
// Every `unsafe` block in the raw-view layer must carry a `// SAFETY:`
// justification (audited; enforced by verify.sh).
#[deny(clippy::undocumented_unsafe_blocks)]
pub mod view;

pub use compare::{assert_tensors_bitwise, assert_tensors_close, compare_tensors, Tolerance};
pub use dtype::DType;
pub use error::{Result, TensorError};
pub use scratch::ScratchPool;
pub use shape::Shape;
pub use tensor::Tensor;
pub use view::{TensorView, TensorViewMut};
