//! Principled floating-point tensor comparison.
//!
//! Differential testing needs a sharper notion of "close" than a flat
//! absolute tolerance: fused kernels re-associate reductions (UTA /
//! online softmax), so large-magnitude values drift by a few *units in
//! the last place* while near-zero values suffer absolute cancellation
//! error. The [`Tolerance`] comparator therefore accepts an element
//! pair when **either** bound holds:
//!
//! * the ULP distance (number of representable `f32` values between
//!   them) is at most `ulps` — a relative criterion that scales with
//!   magnitude, or
//! * the absolute difference is at most `abs` — the floor that keeps
//!   catastrophic-cancellation noise around zero from tripping the ULP
//!   test (where a tiny absolute error spans millions of ULPs).
//!
//! Two NaNs compare equal (the reference and the candidate agreeing on
//! "undefined" is agreement); a NaN against a number never does.
//! Opposite-sign infinities are maximally distant.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::fmt;

/// Combined ULP / absolute tolerance for element-wise comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute-difference floor (applies near zero).
    pub abs: f32,
    /// Maximum units-in-the-last-place distance (relative criterion).
    pub ulps: u32,
}

impl Tolerance {
    /// Exact comparison: 0 ULPs, no absolute floor. Accepts only
    /// identical values (`-0.0 == +0.0` and NaN ≡ NaN included).
    pub fn exact() -> Self {
        Tolerance { abs: 0.0, ulps: 0 }
    }

    /// A combined tolerance: `abs` floor or `ulps` relative distance.
    pub fn new(abs: f32, ulps: u32) -> Self {
        Tolerance { abs, ulps }
    }

    /// Default tolerance for fused-vs-reference diffs of f32 pipelines
    /// with re-associated reductions of extent ≤ `extent`: the error of
    /// a length-`n` reordered sum is O(n·ε·|terms|), i.e. ~`n` ULPs of
    /// headroom plus a cancellation floor that grows with √n.
    pub fn for_reduction_extent(extent: usize) -> Self {
        let n = extent.max(1) as f32;
        Tolerance {
            abs: 1e-5 * n.sqrt(),
            ulps: 64 * (extent.max(1) as u32).next_power_of_two(),
        }
    }

    /// Whether a single element pair is within tolerance.
    pub fn accepts(&self, a: f32, b: f32) -> bool {
        if a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) {
            return true;
        }
        if a.is_nan() || b.is_nan() {
            return false;
        }
        (a - b).abs() <= self.abs || ulp_distance(a, b) <= self.ulps as u64
    }
}

/// Number of representable `f32` values between `a` and `b`.
///
/// Uses the standard monotonic mapping of IEEE-754 bit patterns onto a
/// signed line, so the distance is well-defined across zero (e.g.
/// `-0.0` and `+0.0` are 1 apart, tiny opposite-sign values are close).
/// NaN against anything (including NaN) is `u64::MAX`; use
/// [`Tolerance::accepts`] for NaN-aware comparison.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn ordered(x: f32) -> i64 {
        // Mirror negative values below zero so the integer order
        // matches the float order: +0.0 ↦ 0, -0.0 ↦ -1, and magnitude
        // grows away from zero on both sides.
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7FFF_FFFF) as i64) - 1
        } else {
            bits as i64
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// Where and how two tensors differ.
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// The shapes are incomparable.
    Shape {
        /// Left-hand shape.
        got: Shape,
        /// Right-hand shape.
        want: Shape,
    },
    /// An element pair exceeded the tolerance.
    Element {
        /// Flat (row-major) index of the worst offending element.
        index: usize,
        /// Left-hand value.
        got: f32,
        /// Right-hand value.
        want: f32,
        /// Absolute difference.
        abs_diff: f32,
        /// ULP distance (`u64::MAX` when a NaN is involved).
        ulps: u64,
        /// How many elements exceeded the tolerance in total.
        failed: usize,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Shape { got, want } => {
                write!(f, "shape mismatch: {got} vs {want}")
            }
            Mismatch::Element {
                index,
                got,
                want,
                abs_diff,
                ulps,
                failed,
            } => write!(
                f,
                "{failed} element(s) out of tolerance; worst at [{index}]: \
                 {got:e} vs {want:e} (|Δ| = {abs_diff:.3e}, {ulps} ulps)"
            ),
        }
    }
}

/// Compares two tensors element-wise under a [`Tolerance`].
///
/// Returns the worst mismatch (largest ULP distance, ties broken by
/// absolute difference) when any element fails.
pub fn compare_tensors(a: &Tensor, b: &Tensor, tol: Tolerance) -> Result<(), Mismatch> {
    if a.shape() != b.shape() {
        return Err(Mismatch::Shape {
            got: a.shape().clone(),
            want: b.shape().clone(),
        });
    }
    let mut worst: Option<Mismatch> = None;
    let mut failed = 0usize;
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        if tol.accepts(x, y) {
            continue;
        }
        failed += 1;
        let cand = Mismatch::Element {
            index: i,
            got: x,
            want: y,
            abs_diff: (x - y).abs(),
            ulps: ulp_distance(x, y),
            failed: 0,
        };
        let replace = match (&worst, &cand) {
            (None, _) => true,
            (
                Some(Mismatch::Element {
                    ulps: wu,
                    abs_diff: wa,
                    ..
                }),
                Mismatch::Element {
                    ulps: cu,
                    abs_diff: ca,
                    ..
                },
            ) => cu > wu || (cu == wu && ca > wa),
            _ => false,
        };
        if replace {
            worst = Some(cand);
        }
    }
    match worst {
        None => Ok(()),
        Some(Mismatch::Element {
            index,
            got,
            want,
            abs_diff,
            ulps,
            ..
        }) => Err(Mismatch::Element {
            index,
            got,
            want,
            abs_diff,
            ulps,
            failed,
        }),
        Some(m) => Err(m),
    }
}

/// Asserts two tensors are within tolerance, panicking with a labelled,
/// detailed report otherwise. The shared assertion for compiler
/// correctness tests and the differential fuzzer.
///
/// # Panics
///
/// When shapes differ or any element pair exceeds `tol`.
pub fn assert_tensors_close(label: &str, got: &Tensor, want: &Tensor, tol: Tolerance) {
    if let Err(m) = compare_tensors(got, want, tol) {
        panic!(
            "{label}: tensors differ: {m} (tolerance: abs {:.1e}, {} ulps)",
            tol.abs, tol.ulps
        );
    }
}

/// Asserts two tensors are *bit-identical* (every element has the same
/// `f32` bit pattern — `-0.0` vs `+0.0` and differing NaN payloads
/// fail). The determinism contract of the parallel execution engine.
///
/// # Panics
///
/// When shapes differ or any element pair has different bits.
pub fn assert_tensors_bitwise(label: &str, got: &Tensor, want: &Tensor) {
    assert_eq!(
        got.shape(),
        want.shape(),
        "{label}: shape mismatch: {} vs {}",
        got.shape(),
        want.shape()
    );
    for (i, (x, y)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label}: bitwise divergence at [{i}]: {x:e} ({:#010x}) vs {y:e} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn t(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor::from_data(Shape::new(vec![n]), DType::F32, data).unwrap()
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(-0.0, 0.0), 1);
        // Crossing zero spans both subnormal ranges: ~2^24 ULPs.
        assert!(ulp_distance(f32::MIN_POSITIVE, -f32::MIN_POSITIVE) > (1 << 24));
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(f32::INFINITY, f32::INFINITY), 0);
        // 2·0x7F80_0000 + 1: every finite float sits between them.
        assert_eq!(
            ulp_distance(f32::INFINITY, f32::NEG_INFINITY),
            4_278_190_081
        );
    }

    #[test]
    fn ulp_distance_is_symmetric_and_monotone() {
        let vals = [-3.5f32, -1.0, -1e-20, 0.0, 1e-20, 1.0, 3.5, 1e20];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
            }
        }
        // Distance grows as values separate.
        assert!(ulp_distance(1.0, 1.1) < ulp_distance(1.0, 2.0));
    }

    #[test]
    fn tolerance_accepts_relative_drift_on_large_values() {
        let tol = Tolerance::new(1e-6, 8);
        let a = 1e6f32;
        let b = f32::from_bits(a.to_bits() + 5);
        // |Δ| far exceeds the abs floor, but 5 ulps is within budget.
        assert!((a - b).abs() > 1e-6);
        assert!(tol.accepts(a, b));
        assert!(!tol.accepts(a, f32::from_bits(a.to_bits() + 50)));
    }

    #[test]
    fn tolerance_abs_floor_covers_cancellation_near_zero() {
        let tol = Tolerance::new(1e-6, 4);
        // 1e-7 absolute error around zero is millions of ulps.
        assert!(ulp_distance(0.0, 1e-7) > 1_000_000);
        assert!(tol.accepts(0.0, 1e-7));
        assert!(!tol.accepts(0.0, 1e-5));
    }

    #[test]
    fn nan_semantics() {
        let tol = Tolerance::exact();
        assert!(tol.accepts(f32::NAN, f32::NAN));
        assert!(!tol.accepts(f32::NAN, 0.0));
        assert!(!tol.accepts(0.0, f32::NAN));
        assert!(tol.accepts(f32::INFINITY, f32::INFINITY));
        assert!(!tol.accepts(f32::INFINITY, f32::MAX));
    }

    #[test]
    fn exact_tolerance_spans_signed_zero() {
        assert!(
            Tolerance::exact().accepts(-0.0, 0.0),
            "distance 1 but equal"
        );
    }

    #[test]
    fn compare_reports_worst_element_and_count() {
        let a = t(vec![1.0, 2.0, 3.0, 0.0]);
        let b = t(vec![1.0, 2.5, 3.001, 0.0]);
        let err = compare_tensors(&a, &b, Tolerance::new(1e-6, 4)).unwrap_err();
        match err {
            Mismatch::Element { index, failed, .. } => {
                assert_eq!(index, 1, "2.0 vs 2.5 is the worst offender");
                assert_eq!(failed, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_rejects_shape_mismatch() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            compare_tensors(&a, &b, Tolerance::exact()),
            Err(Mismatch::Shape { .. })
        ));
    }

    #[test]
    fn assert_close_passes_within_tolerance() {
        let a = t(vec![1.0, 2.0]);
        let mut b = a.clone();
        b.data_mut()[1] = 2.0 + 1e-7;
        assert_tensors_close("test", &a, &b, Tolerance::new(1e-6, 4));
        assert_tensors_bitwise("test", &a, &a.clone());
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn assert_close_panics_with_label() {
        let a = t(vec![1.0]);
        let b = t(vec![2.0]);
        assert_tensors_close("test", &a, &b, Tolerance::exact());
    }

    #[test]
    #[should_panic(expected = "bitwise divergence")]
    fn assert_bitwise_rejects_signed_zero() {
        assert_tensors_bitwise("test", &t(vec![0.0]), &t(vec![-0.0]));
    }

    #[test]
    fn reduction_extent_tolerance_scales() {
        let small = Tolerance::for_reduction_extent(16);
        let large = Tolerance::for_reduction_extent(4096);
        assert!(large.abs > small.abs);
        assert!(large.ulps > small.ulps);
    }
}
