//! Tensor shapes and the small shape algebra used by the compiler.

use crate::error::{Result, TensorError};
use std::fmt;

/// A dense, row-major tensor shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `dim`.
    pub fn dim(&self, dim: usize) -> Result<usize> {
        self.0.get(dim).copied().ok_or(TensorError::DimOutOfRange {
            dim,
            rank: self.0.len(),
        })
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index rank does not match.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            off += index[i] * stride;
            stride *= d;
        }
        off
    }

    /// Shape with dimension `dim` replaced by extent 1 (a kept reduction).
    pub fn with_dim(&self, dim: usize, extent: usize) -> Result<Shape> {
        if dim >= self.0.len() {
            return Err(TensorError::DimOutOfRange {
                dim,
                rank: self.0.len(),
            });
        }
        let mut dims = self.0.clone();
        dims[dim] = extent;
        Ok(Shape(dims))
    }

    /// Whether `other` broadcasts to `self` (equal extents or `other` has 1).
    pub fn broadcasts_from(&self, other: &Shape) -> bool {
        if self.rank() != other.rank() {
            return false;
        }
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(&a, &b)| a == b || b == 1)
    }

    /// Broadcasted result shape of two operands, if compatible.
    pub fn broadcast_with(&self, other: &Shape) -> Result<Shape> {
        if self.rank() != other.rank() {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast",
                lhs: self.clone(),
                rhs: other.clone(),
            });
        }
        let mut dims = Vec::with_capacity(self.rank());
        for (&a, &b) in self.0.iter().zip(other.0.iter()) {
            if a == b || b == 1 {
                dims.push(a);
            } else if a == 1 {
                dims.push(b);
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.clone(),
                    rhs: other.clone(),
                });
            }
        }
        Ok(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn dim_out_of_range() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.dim(2).is_err());
        assert_eq!(s.dim(1).unwrap(), 3);
    }

    #[test]
    fn broadcasting_rules() {
        let a = Shape::new(vec![4, 5]);
        let b = Shape::new(vec![4, 1]);
        assert!(a.broadcasts_from(&b));
        assert!(!b.broadcasts_from(&a));
        assert_eq!(a.broadcast_with(&b).unwrap(), a);
        assert_eq!(b.broadcast_with(&a).unwrap(), a);

        let c = Shape::new(vec![3, 5]);
        assert!(a.broadcast_with(&c).is_err());
    }

    #[test]
    fn with_dim_replaces_extent() {
        let s = Shape::new(vec![4, 5]);
        assert_eq!(s.with_dim(1, 1).unwrap(), Shape::new(vec![4, 1]));
        assert!(s.with_dim(2, 1).is_err());
    }
}
