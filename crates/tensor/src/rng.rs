//! Minimal deterministic pseudo-random number generator.
//!
//! An in-tree xorshift64* generator (seeded through a SplitMix64 mixer
//! so nearby seeds diverge immediately) keeps the workspace free of
//! registry dependencies while preserving the property tests and
//! benchmarks actually need: a fixed seed yields the same stream on
//! every platform and every run.

/// A deterministic xorshift64* generator.
///
/// # Examples
///
/// ```
/// use sf_tensor::rng::XorShiftRng;
/// let mut a = XorShiftRng::seed_from_u64(7);
/// let mut b = XorShiftRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is passed through a SplitMix64 finalizer so that small
    /// consecutive seeds (0, 1, 2, …) produce uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // xorshift64* has one fixed point at 0; nudge away from it.
        XorShiftRng {
            state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
        }
    }

    /// Next 64 raw pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)` (24 bits of mantissa entropy).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` (`n > 0`); lightly biased for huge
    /// `n`, which is irrelevant for test-data generation.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = XorShiftRng::seed_from_u64(1);
        let mut b = XorShiftRng::seed_from_u64(1);
        let mut c = XorShiftRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = XorShiftRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::seed_from_u64(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut r = XorShiftRng::seed_from_u64(3);
        let n = 4096;
        let mean: f32 = (0..n).map(|_| r.uniform(-1.0, 1.0)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} suggests a broken generator");
    }
}
