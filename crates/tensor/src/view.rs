//! Zero-copy strided tensor views.
//!
//! A [`TensorView`] borrows a rectangular region of a [`Tensor`]'s data
//! without copying it: the view keeps the parent's storage slice plus its
//! own dimensions and strides. The kernel interpreter uses views for
//! every block/tile extraction, so restricting a value to a spatial or
//! temporal block is O(1) instead of an O(volume) clone.
//!
//! [`TensorViewMut`] is the write-side counterpart: a mutable strided
//! view of externally-owned storage. The parallel executor pre-partitions
//! each output tensor into disjoint per-block regions and hands every
//! worker its own `TensorViewMut`, so block results scatter into the
//! shared output without any lock — spatial blocks write disjoint
//! regions by the slicer's Table-3 legality guarantee.

use crate::dtype::DType;
use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// A borrowed, possibly strided, rectangular view of tensor data.
///
/// # Examples
///
/// ```
/// use sf_tensor::{Tensor, Shape, DType};
/// let t = Tensor::from_data(
///     Shape::new(vec![2, 3]),
///     DType::F32,
///     vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
/// )
/// .unwrap();
/// // Column slice [0..2, 1..3): strided, no copy.
/// let v = t.slice(&[(0, 2), (1, 3)]).unwrap();
/// assert_eq!(v.dims(), &[2, 2]);
/// assert_eq!(v.at(&[1, 0]), 4.0);
/// assert!(!v.is_contiguous());
/// assert_eq!(v.to_tensor().data(), &[1.0, 2.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TensorView<'a> {
    /// Parent storage starting at this view's base offset.
    data: &'a [f32],
    /// View shape.
    shape: Shape,
    /// Strides into `data` (elements), one per view dimension.
    strides: Vec<usize>,
    /// Storage precision (inherited from the parent).
    dtype: DType,
}

impl<'a> TensorView<'a> {
    /// Builds a view over a raw slice (crate-internal: callers guarantee
    /// the strides address within `data`).
    pub(crate) fn new(data: &'a [f32], shape: Shape, strides: Vec<usize>, dtype: DType) -> Self {
        TensorView {
            data,
            shape,
            strides,
            dtype,
        }
    }

    /// The view's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The view's dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Storage precision.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Strides into the underlying data, in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The underlying storage, starting at the view's base offset.
    ///
    /// Only offsets produced by [`strides`](TensorView::strides) are
    /// meaningful; the slice may extend past the view's last element.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        debug_assert_eq!(index.len(), self.rank(), "view index rank mismatch");
        let off: usize = index.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum();
        self.data[off]
    }

    /// Whether the view's elements are laid out densely in row-major
    /// order (dimensions of extent 1 are stride-agnostic).
    pub fn is_contiguous(&self) -> bool {
        let mut expected = 1usize;
        for (&d, &s) in self.shape.dims().iter().zip(&self.strides).rev() {
            if d > 1 {
                if s != expected {
                    return false;
                }
                expected *= d;
            }
        }
        true
    }

    /// The view's elements as one dense slice, when contiguous.
    pub fn as_slice(&self) -> Option<&'a [f32]> {
        if self.is_contiguous() {
            Some(&self.data[..self.volume()])
        } else {
            None
        }
    }

    /// Restricts the view to per-axis `[start, end)` ranges, returning a
    /// sub-view of the same storage.
    pub fn slice(&self, ranges: &[(usize, usize)]) -> Result<TensorView<'a>> {
        if ranges.len() != self.rank() {
            return Err(TensorError::InvalidShape(format!(
                "slice needs {} range(s), got {}",
                self.rank(),
                ranges.len()
            )));
        }
        let mut offset = 0usize;
        let mut dims = Vec::with_capacity(ranges.len());
        for ((&(s, t), &e), &stride) in ranges
            .iter()
            .zip(self.shape.dims().iter())
            .zip(&self.strides)
        {
            if s > t || t > e {
                return Err(TensorError::InvalidShape(format!(
                    "slice range [{s}, {t}) out of bounds for extent {e}"
                )));
            }
            offset += s * stride;
            dims.push(t - s);
        }
        let offset = offset.min(self.data.len());
        Ok(TensorView {
            data: &self.data[offset..],
            shape: Shape::new(dims),
            strides: self.strides.clone(),
            dtype: self.dtype,
        })
    }

    /// Materializes the view into an owned dense tensor.
    pub fn to_tensor(&self) -> Tensor {
        if let Some(s) = self.as_slice() {
            crate::alloc_stats::record_alloc();
            return Tensor::from_data(self.shape.clone(), self.dtype, s.to_vec())
                .expect("contiguous view volume matches");
        }
        let volume = self.volume();
        let dec = self.shape.strides();
        crate::alloc_stats::record_alloc();
        let mut out = Vec::with_capacity(volume);
        for lin in 0..volume {
            let mut rem = lin;
            let mut off = 0usize;
            for (&d, &s) in dec.iter().zip(&self.strides) {
                let i = rem / d.max(1);
                rem %= d.max(1);
                off += i * s;
            }
            out.push(self.data[off]);
        }
        Tensor::from_data(self.shape.clone(), self.dtype, out).expect("view volume matches")
    }
}

/// A mutable, possibly strided, rectangular view of externally-owned
/// `f32` storage.
///
/// Unlike [`TensorView`] this is built from a raw pointer so that many
/// disjoint views of the *same* tensor can be held by different worker
/// threads at once (the borrow checker cannot express "disjoint strided
/// regions"). Disjointness is the constructor's safety contract.
///
/// # Examples
///
/// ```
/// use sf_tensor::{DType, Shape, Tensor};
/// let mut t = Tensor::zeros(Shape::new(vec![2, 3]), DType::F32);
/// let mut v = t.view_mut();
/// v.copy_from_dense(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Debug)]
pub struct TensorViewMut<'a> {
    /// Base of the view's region.
    data: *mut f32,
    /// Addressable elements from `data` (bounds checking).
    len: usize,
    /// View shape.
    shape: Shape,
    /// Strides into `data` (elements), one per view dimension.
    strides: Vec<usize>,
    _owner: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: a TensorViewMut is an exclusive handle on the region its
// shape/strides address (constructor contract); sending it to another
// thread transfers that exclusivity.
unsafe impl Send for TensorViewMut<'_> {}

impl<'a> TensorViewMut<'a> {
    /// Builds a mutable view over raw storage.
    ///
    /// # Safety
    ///
    /// * `data .. data + len` must be valid for reads and writes for the
    ///   lifetime `'a`.
    /// * Every element addressed by `shape`/`strides` must fall inside
    ///   `len`.
    /// * No other live reference or view may alias any element this view
    ///   addresses (disjoint regions of one buffer are fine).
    pub unsafe fn from_raw_parts(
        data: *mut f32,
        len: usize,
        shape: Shape,
        strides: Vec<usize>,
    ) -> Self {
        TensorViewMut {
            data,
            len,
            shape,
            strides,
            _owner: std::marker::PhantomData,
        }
    }

    /// The view's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The view's dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Copies a dense row-major buffer (`src.len() == volume`) into the
    /// strided destination region.
    ///
    /// The destination decomposes into contiguous runs — the maximal
    /// dense suffix of the view's axes — which are copied
    /// slice-to-slice; this is the executor's output scatter.
    pub fn copy_from_dense(&mut self, src: &[f32]) -> Result<()> {
        let dims = self.shape.dims().to_vec();
        let volume = self.volume();
        if src.len() != volume {
            return Err(TensorError::InvalidShape(format!(
                "copy_from_dense: source length {} != view volume {volume}",
                src.len()
            )));
        }
        if volume == 0 {
            return Ok(());
        }
        // Maximal suffix of axes over which the destination is dense:
        // stride equals the product of the region extents below it.
        let mut run = 1usize;
        let mut split = dims.len();
        while split > 0 {
            let ax = split - 1;
            if dims[ax] != 1 && self.strides[ax] != run {
                break;
            }
            run *= dims[ax];
            split -= 1;
        }
        let n_outer: usize = dims[..split].iter().product();
        let mut idx = vec![0usize; split];
        for block in 0..n_outer {
            let mut rem = block;
            for (i, &d) in dims[..split].iter().enumerate().rev() {
                idx[i] = rem % d;
                rem /= d;
            }
            let off: usize = idx
                .iter()
                .zip(&self.strides[..split])
                .map(|(&i, &s)| i * s)
                .sum();
            debug_assert!(off + run <= self.len, "run escapes the view's storage");
            // SAFETY: offsets produced by the view's strides address
            // within `len` (constructor contract), and `src` cannot
            // overlap the exclusively-held destination.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(block * run),
                    self.data.add(off),
                    run,
                );
            }
        }
        Ok(())
    }
}

impl Tensor {
    /// A zero-copy view of the whole tensor.
    pub fn view(&self) -> TensorView<'_> {
        TensorView::new(
            self.data(),
            self.shape().clone(),
            self.shape().strides(),
            self.dtype(),
        )
    }

    /// A zero-copy view of the tensor reinterpreted under a new shape of
    /// equal volume (the no-copy counterpart of [`Tensor::reshape`]).
    pub fn view_reshaped(&self, shape: Shape) -> Result<TensorView<'_>> {
        if shape.volume() != self.shape().volume() {
            return Err(TensorError::InvalidShape(format!(
                "cannot view {} (volume {}) as {} (volume {})",
                self.shape(),
                self.shape().volume(),
                shape,
                shape.volume()
            )));
        }
        let strides = shape.strides();
        Ok(TensorView::new(self.data(), shape, strides, self.dtype()))
    }

    /// A zero-copy view restricted to per-axis `[start, end)` ranges.
    pub fn slice(&self, ranges: &[(usize, usize)]) -> Result<TensorView<'_>> {
        self.view().slice(ranges)
    }

    /// A mutable view of the whole tensor.
    pub fn view_mut(&mut self) -> TensorViewMut<'_> {
        let shape = self.shape().clone();
        let strides = shape.strides();
        let data = self.data_mut();
        let len = data.len();
        // SAFETY: the view borrows `self` mutably for its lifetime, so
        // it is the only handle on the storage.
        unsafe { TensorViewMut::from_raw_parts(data.as_mut_ptr(), len, shape, strides) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn full_view_is_contiguous() {
        let x = t(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let v = x.view();
        assert!(v.is_contiguous());
        assert_eq!(v.as_slice().unwrap(), x.data());
        assert_eq!(v.at(&[1, 2]), 5.0);
    }

    #[test]
    fn row_slice_is_contiguous_column_slice_is_not() {
        let x = t(vec![4, 3], (0..12).map(|i| i as f32).collect());
        let rows = x.slice(&[(1, 3), (0, 3)]).unwrap();
        assert!(rows.is_contiguous());
        assert_eq!(rows.as_slice().unwrap(), &x.data()[3..9]);

        let cols = x.slice(&[(0, 4), (1, 2)]).unwrap();
        assert!(!cols.is_contiguous());
        assert_eq!(cols.dims(), &[4, 1]);
        assert_eq!(cols.to_tensor().data(), &[1.0, 4.0, 7.0, 10.0]);
    }

    #[test]
    fn nested_slicing_composes() {
        let x = t(vec![4, 4], (0..16).map(|i| i as f32).collect());
        let v = x.slice(&[(1, 4), (1, 4)]).unwrap();
        let w = v.slice(&[(1, 3), (0, 2)]).unwrap();
        assert_eq!(w.dims(), &[2, 2]);
        assert_eq!(w.to_tensor().data(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn slice_validates_ranges() {
        let x = t(vec![2, 2], vec![0.0; 4]);
        assert!(x.slice(&[(0, 3), (0, 2)]).is_err());
        assert!(x.slice(&[(1, 0), (0, 2)]).is_err());
        assert!(x.slice(&[(0, 2)]).is_err());
    }

    #[test]
    fn reshaped_view_matches_reshape() {
        let x = t(vec![2, 6], (0..12).map(|i| i as f32).collect());
        let v = x.view_reshaped(Shape::new(vec![3, 4])).unwrap();
        assert_eq!(v.to_tensor(), x.reshape(Shape::new(vec![3, 4])).unwrap());
        assert!(x.view_reshaped(Shape::new(vec![5])).is_err());
    }

    #[test]
    fn view_mut_copies_strided_regions() {
        // Write the two column halves of a 4x4 through disjoint views.
        let mut x = t(vec![4, 4], vec![0.0; 16]);
        let strides = x.shape().strides();
        let len = x.data().len();
        let base = x.data_mut().as_mut_ptr();
        // SAFETY: the left region [0..4, 0..2) is in bounds and `x` is
        // not otherwise touched while the views live.
        let mut left = unsafe {
            TensorViewMut::from_raw_parts(base, len, Shape::new(vec![4, 2]), strides.clone())
        };
        // SAFETY: the right region [0..4, 2..4) is in bounds and disjoint
        // from `left`.
        let mut right = unsafe {
            TensorViewMut::from_raw_parts(base.add(2), len - 2, Shape::new(vec![4, 2]), strides)
        };
        left.copy_from_dense(&[1.0; 8]).unwrap();
        right.copy_from_dense(&[2.0; 8]).unwrap();
        drop((left, right));
        for r in 0..4 {
            assert_eq!(&x.data()[r * 4..r * 4 + 4], &[1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn view_mut_validates_source_length() {
        let mut x = t(vec![2, 2], vec![0.0; 4]);
        assert!(x.view_mut().copy_from_dense(&[0.0; 3]).is_err());
        assert!(x.view_mut().copy_from_dense(&[9.0; 4]).is_ok());
        assert_eq!(x.data(), &[9.0; 4]);
    }

    #[test]
    fn view_mut_dense_suffix_is_one_run_for_row_regions() {
        // A row slab [1..3, 0..3) of a 4x3 tensor is fully dense: one
        // contiguous run.
        let mut x = t(vec![4, 3], vec![0.0; 12]);
        let strides = x.shape().strides();
        let len = x.data().len();
        let base = x.data_mut().as_mut_ptr();
        // SAFETY: the slab starts at row 1 and stays in bounds; `x` is
        // not otherwise touched while the view lives.
        let mut rows = unsafe {
            TensorViewMut::from_raw_parts(base.add(3), len - 3, Shape::new(vec![2, 3]), strides)
        };
        rows.copy_from_dense(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        drop(rows);
        assert_eq!(
            x.data(),
            &[0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn empty_slice_has_zero_volume() {
        let x = t(vec![2, 2], vec![0.0; 4]);
        let v = x.slice(&[(2, 2), (0, 2)]).unwrap();
        assert_eq!(v.volume(), 0);
        assert_eq!(v.to_tensor().shape().dims(), &[0, 2]);
    }
}
