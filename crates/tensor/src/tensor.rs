//! The dense tensor type.

use crate::dtype::DType;
use crate::error::{Result, TensorError};
use crate::rng::XorShiftRng;
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// The [`DType`] records the *storage* precision used for memory-traffic
/// accounting in the GPU model; arithmetic is always carried out in `f32`.
///
/// # Examples
///
/// ```
/// use sf_tensor::{Tensor, Shape, DType};
/// let t = Tensor::zeros(Shape::new(vec![2, 3]), DType::F16);
/// assert_eq!(t.shape().volume(), 6);
/// assert_eq!(t.size_bytes(), 12);
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    dtype: DType,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        // A clone materializes a fresh data buffer, so it counts toward
        // the allocation statistics like any constructor.
        crate::alloc_stats::record_alloc();
        Tensor {
            shape: self.shape.clone(),
            dtype: self.dtype,
            data: self.data.clone(),
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data.
    ///
    /// Returns [`TensorError::DataLenMismatch`] if `data.len()` does not
    /// equal the shape volume.
    pub fn from_data(shape: Shape, dtype: DType, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::DataLenMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, dtype, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape, dtype: DType) -> Self {
        crate::alloc_stats::record_alloc();
        let volume = shape.volume();
        Tensor {
            shape,
            dtype,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, dtype: DType, value: f32) -> Self {
        crate::alloc_stats::record_alloc();
        let volume = shape.volume();
        Tensor {
            shape,
            dtype,
            data: vec![value; volume],
        }
    }

    /// Creates a tensor with uniformly random values in `[-1, 1)`.
    ///
    /// Deterministic for a given `seed`, so tests and benchmarks are
    /// reproducible.
    pub fn random(shape: Shape, dtype: DType, seed: u64) -> Self {
        crate::alloc_stats::record_alloc();
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let volume = shape.volume();
        let data = (0..volume).map(|_| rng.uniform(-1.0, 1.0)).collect();
        Tensor { shape, dtype, data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The storage precision.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its data buffer (used by
    /// [`ScratchPool::recycle_tensor`](crate::ScratchPool::recycle_tensor)).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Storage size in bytes at the tensor's precision.
    pub fn size_bytes(&self) -> usize {
        self.shape.volume() * self.dtype.size_bytes()
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a copy with every element rounded through the storage
    /// precision (a no-op for `F32`). Models what values survive a trip
    /// through half-precision global memory.
    pub fn quantized(&self) -> Tensor {
        crate::alloc_stats::record_alloc();
        let data = self.data.iter().map(|&v| self.dtype.quantize(v)).collect();
        Tensor {
            shape: self.shape.clone(),
            dtype: self.dtype,
            data,
        }
    }

    /// Reinterprets the data under a new shape of equal volume.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.volume() != self.shape.volume() {
            return Err(TensorError::InvalidShape(format!(
                "cannot reshape {} (volume {}) to {} (volume {})",
                self.shape,
                self.shape.volume(),
                shape,
                shape.volume()
            )));
        }
        crate::alloc_stats::record_alloc();
        Ok(Tensor {
            shape,
            dtype: self.dtype,
            data: self.data.clone(),
        })
    }

    /// Maximum absolute element-wise difference to another tensor.
    ///
    /// Returns `None` when the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }

    /// Whether all elements are within `tol` of `other` (same shape).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_data_validates_len() {
        let err = Tensor::from_data(Shape::new(vec![2, 2]), DType::F32, vec![1.0; 3]);
        assert!(matches!(err, Err(TensorError::DataLenMismatch { .. })));
        assert!(Tensor::from_data(Shape::new(vec![2, 2]), DType::F32, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(Shape::new(vec![8]), DType::F32, 7);
        let b = Tensor::random(Shape::new(vec![8]), DType::F32, 7);
        let c = Tensor::random(Shape::new(vec![8]), DType::F32, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(Shape::new(vec![3, 4]), DType::F32);
        t.set(&[2, 1], 5.5);
        assert_eq!(t.at(&[2, 1]), 5.5);
        assert_eq!(t.data()[2 * 4 + 1], 5.5);
    }

    #[test]
    fn size_accounts_for_dtype() {
        let s = Shape::new(vec![4, 4]);
        assert_eq!(Tensor::zeros(s.clone(), DType::F16).size_bytes(), 32);
        assert_eq!(Tensor::zeros(s, DType::F32).size_bytes(), 64);
    }

    #[test]
    fn reshape_checks_volume() {
        let t = Tensor::zeros(Shape::new(vec![2, 6]), DType::F32);
        assert!(t.reshape(Shape::new(vec![3, 4])).is_ok());
        assert!(t.reshape(Shape::new(vec![5])).is_err());
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::full(Shape::new(vec![2]), DType::F32, 1.0);
        let mut b = a.clone();
        b.set(&[1], 1.01);
        assert!(a.allclose(&b, 0.02));
        assert!(!a.allclose(&b, 0.001));
        let c = Tensor::zeros(Shape::new(vec![3]), DType::F32);
        assert_eq!(a.max_abs_diff(&c), None);
    }
}
