//! Composite reference operators built from the primitives.
//!
//! These are the unfused, numerically exact implementations of the
//! paper's evaluated subgraphs (Fig. 10): Softmax, LayerNorm, RMSNorm,
//! multi-head attention, and MLP layers. Every fused kernel the compiler
//! generates is validated against these.

use super::{binary, binary_scalar, matmul, reduce, unary, BinaryOp, ReduceOp, UnaryOp};
use crate::error::Result;
use crate::tensor::Tensor;

/// Numerically stable softmax along the last dimension of a 2-D tensor.
///
/// Implements the exact `max → sub → exp → sum → div` chain of Fig. 1.
pub fn softmax(x: &Tensor) -> Result<Tensor> {
    let dim = x.shape().rank() - 1;
    let max = reduce(ReduceOp::Max, x, dim)?;
    let sub = binary(BinaryOp::Sub, x, &max)?;
    let exp = unary(UnaryOp::Exp, &sub);
    let sum = reduce(ReduceOp::Sum, &exp, dim)?;
    binary(BinaryOp::Div, &exp, &sum)
}

/// Layer normalization over the last dimension (Fig. 10(c) structure).
///
/// `y = (x - mean) / sqrt(var + eps) * weight + bias`, with `weight` and
/// `bias` of shape `[1, N]`.
pub fn layernorm(x: &Tensor, weight: &Tensor, bias: &Tensor, eps: f32) -> Result<Tensor> {
    let dim = x.shape().rank() - 1;
    let mean = reduce(ReduceOp::Mean, x, dim)?;
    let centered = binary(BinaryOp::Sub, x, &mean)?;
    let sq = unary(UnaryOp::Sqr, &centered);
    let var = reduce(ReduceOp::Mean, &sq, dim)?;
    let denom = unary(UnaryOp::Sqrt, &binary_scalar(BinaryOp::Add, &var, eps));
    let normed = binary(BinaryOp::Div, &centered, &denom)?;
    let scaled = binary(BinaryOp::Mul, &normed, weight)?;
    binary(BinaryOp::Add, &scaled, bias)
}

/// RMS normalization over the last dimension (used by Llama2).
///
/// `y = x / sqrt(mean(x^2) + eps) * weight`.
pub fn rmsnorm(x: &Tensor, weight: &Tensor, eps: f32) -> Result<Tensor> {
    let dim = x.shape().rank() - 1;
    let sq = unary(UnaryOp::Sqr, x);
    let ms = reduce(ReduceOp::Mean, &sq, dim)?;
    let denom = unary(UnaryOp::Sqrt, &binary_scalar(BinaryOp::Add, &ms, eps));
    let normed = binary(BinaryOp::Div, x, &denom)?;
    binary(BinaryOp::Mul, &normed, weight)
}

/// Single-head scaled-dot-product attention (Fig. 10(d) structure).
///
/// `Out = softmax(Q · Kᵀ / sqrt(d)) · V` for `Q [L, d]`, `K [L, d]`,
/// `V [L, d]`.
pub fn attention(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor> {
    let d = q.shape().dim(q.shape().rank() - 1)?;
    let qk = matmul(q, k, true)?;
    let scaled = binary_scalar(BinaryOp::Mul, &qk, 1.0 / (d as f32).sqrt());
    let probs = softmax(&scaled)?;
    matmul(&probs, v, false)
}

/// One MLP layer: `relu(x · Wᵀ + b)` with `W [N, K]`, `b [1, N]`.
pub fn mlp_layer(x: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let y = matmul(x, weight, true)?;
    let y = binary(BinaryOp::Add, &y, bias)?;
    Ok(unary(UnaryOp::Relu, &y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::random(Shape::new(vec![4, 16]), DType::F32, 11);
        let y = softmax(&x).unwrap();
        for i in 0..4 {
            let row_sum: f32 = (0..16).map(|j| y.at(&[i, j])).sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::random(Shape::new(vec![2, 8]), DType::F32, 12);
        let shifted = binary_scalar(BinaryOp::Add, &x, 100.0);
        let a = softmax(&x).unwrap();
        let b = softmax(&shifted).unwrap();
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn softmax_handles_large_values_stably() {
        let x = Tensor::full(Shape::new(vec![1, 4]), DType::F32, 1000.0);
        let y = softmax(&x).unwrap();
        for j in 0..4 {
            assert!((y.at(&[0, j]) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = Tensor::random(Shape::new(vec![3, 64]), DType::F32, 13);
        let w = Tensor::full(Shape::new(vec![1, 64]), DType::F32, 1.0);
        let b = Tensor::zeros(Shape::new(vec![1, 64]), DType::F32);
        let y = layernorm(&x, &w, &b, 1e-5).unwrap();
        for i in 0..3 {
            let mean: f32 = (0..64).map(|j| y.at(&[i, j])).sum::<f32>() / 64.0;
            let var: f32 = (0..64).map(|j| (y.at(&[i, j]) - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rmsnorm_unit_weight_scales_rows() {
        let x = Tensor::full(Shape::new(vec![1, 16]), DType::F32, 2.0);
        let w = Tensor::full(Shape::new(vec![1, 16]), DType::F32, 1.0);
        let y = rmsnorm(&x, &w, 0.0).unwrap();
        // RMS of constant 2.0 is 2.0, so output should be all ones.
        for j in 0..16 {
            assert!((y.at(&[0, j]) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_output_shape_and_rows_are_convex_combinations() {
        let q = Tensor::random(Shape::new(vec![8, 16]), DType::F32, 21);
        let k = Tensor::random(Shape::new(vec![8, 16]), DType::F32, 22);
        let v = Tensor::full(Shape::new(vec![8, 16]), DType::F32, 3.0);
        let out = attention(&q, &k, &v).unwrap();
        assert_eq!(out.shape().dims(), &[8, 16]);
        // With constant V, attention output must equal V exactly.
        for i in 0..8 {
            for j in 0..16 {
                assert!((out.at(&[i, j]) - 3.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn mlp_layer_applies_relu() {
        let x = Tensor::random(Shape::new(vec![4, 8]), DType::F32, 31);
        let w = Tensor::random(Shape::new(vec![6, 8]), DType::F32, 32);
        let b = Tensor::zeros(Shape::new(vec![1, 6]), DType::F32);
        let y = mlp_layer(&x, &w, &b).unwrap();
        assert_eq!(y.shape().dims(), &[4, 6]);
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }
}
