//! Element-wise unary and binary reference operators.

use super::{BinaryOp, UnaryOp};
use crate::error::Result;
use crate::tensor::Tensor;

/// Applies a unary operator element-wise.
pub fn unary(op: UnaryOp, x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| op.eval(v)).collect();
    Tensor::from_data(x.shape().clone(), x.dtype(), data).expect("unary preserves volume")
}

/// Applies a binary operator element-wise with limited broadcasting.
///
/// The right operand may have extent 1 in dimensions where the left has a
/// larger extent (and vice versa); ranks must match. This covers every
/// broadcast pattern in the paper's workloads (row/column broadcasts after
/// reductions, bias adds).
pub fn binary(op: BinaryOp, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let out_shape = a.shape().broadcast_with(b.shape())?;
    let rank = out_shape.rank();
    let volume = out_shape.volume();
    let out_strides = out_shape.strides();
    let a_strides = masked_strides(a, &out_shape);
    let b_strides = masked_strides(b, &out_shape);

    let mut data = Vec::with_capacity(volume);
    let a_data = a.data();
    let b_data = b.data();
    for lin in 0..volume {
        let mut a_off = 0;
        let mut b_off = 0;
        let mut rem = lin;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            a_off += idx * a_strides[d];
            b_off += idx * b_strides[d];
        }
        data.push(op.eval(a_data[a_off], b_data[b_off]));
    }
    Ok(Tensor::from_data(out_shape, a.dtype(), data).expect("volume matches"))
}

/// Applies `op(x, scalar)` element-wise.
pub fn binary_scalar(op: BinaryOp, x: &Tensor, scalar: f32) -> Tensor {
    let data = x.data().iter().map(|&v| op.eval(v, scalar)).collect();
    Tensor::from_data(x.shape().clone(), x.dtype(), data).expect("binary_scalar preserves volume")
}

/// Strides of `t` viewed in `out` shape: broadcast dims get stride 0.
fn masked_strides(t: &Tensor, out: &crate::shape::Shape) -> Vec<usize> {
    let strides = t.shape().strides();
    t.shape()
        .dims()
        .iter()
        .zip(out.dims().iter())
        .zip(strides)
        .map(|((&td, &od), s)| if td == od { s } else { 0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn unary_applies_elementwise() {
        let x = t(vec![2, 2], vec![-1.0, 0.0, 1.0, 2.0]);
        let y = unary(UnaryOp::Relu, &x);
        assert_eq!(y.data(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn binary_same_shape() {
        let a = t(vec![2], vec![1.0, 2.0]);
        let b = t(vec![2], vec![10.0, 20.0]);
        assert_eq!(binary(BinaryOp::Add, &a, &b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn binary_broadcast_column() {
        // [2,3] - [2,1] : subtract a per-row value, the Softmax pattern.
        let a = t(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(vec![2, 1], vec![1.0, 4.0]);
        let y = binary(BinaryOp::Sub, &a, &b).unwrap();
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn binary_broadcast_row() {
        // [2,3] + [1,3] : bias-add pattern.
        let a = t(vec![2, 3], vec![1.0; 6]);
        let b = t(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let y = binary(BinaryOp::Add, &a, &b).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn binary_broadcast_left() {
        let a = t(vec![2, 1], vec![1.0, 2.0]);
        let b = t(vec![2, 3], vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let y = binary(BinaryOp::Mul, &a, &b).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn binary_incompatible_shapes() {
        let a = t(vec![2, 3], vec![0.0; 6]);
        let b = t(vec![2, 2], vec![0.0; 4]);
        assert!(binary(BinaryOp::Add, &a, &b).is_err());
    }

    #[test]
    fn scalar_op() {
        let x = t(vec![3], vec![1.0, 2.0, 3.0]);
        assert_eq!(
            binary_scalar(BinaryOp::Mul, &x, 2.0).data(),
            &[2.0, 4.0, 6.0]
        );
    }
}
