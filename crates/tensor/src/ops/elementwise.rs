//! Element-wise unary and binary reference operators.
//!
//! Thin dense-tensor wrappers over the view kernels in
//! [`super::viewed`], so one implementation defines the semantics.

use super::{viewed, BinaryOp, UnaryOp};
use crate::error::Result;
use crate::scratch::ScratchPool;
use crate::tensor::Tensor;

/// Applies a unary operator element-wise.
pub fn unary(op: UnaryOp, x: &Tensor) -> Tensor {
    viewed::unary(op, &x.view(), &mut ScratchPool::disabled())
}

/// Applies a binary operator element-wise with limited broadcasting.
///
/// The right operand may have extent 1 in dimensions where the left has a
/// larger extent (and vice versa); ranks must match. This covers every
/// broadcast pattern in the paper's workloads (row/column broadcasts after
/// reductions, bias adds).
pub fn binary(op: BinaryOp, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    viewed::binary(op, &a.view(), &b.view(), &mut ScratchPool::disabled())
}

/// Applies `op(x, scalar)` element-wise.
pub fn binary_scalar(op: BinaryOp, x: &Tensor, scalar: f32) -> Tensor {
    viewed::binary_scalar(op, &x.view(), scalar, &mut ScratchPool::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn unary_applies_elementwise() {
        let x = t(vec![2, 2], vec![-1.0, 0.0, 1.0, 2.0]);
        let y = unary(UnaryOp::Relu, &x);
        assert_eq!(y.data(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn binary_same_shape() {
        let a = t(vec![2], vec![1.0, 2.0]);
        let b = t(vec![2], vec![10.0, 20.0]);
        assert_eq!(binary(BinaryOp::Add, &a, &b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn binary_broadcast_column() {
        // [2,3] - [2,1] : subtract a per-row value, the Softmax pattern.
        let a = t(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(vec![2, 1], vec![1.0, 4.0]);
        let y = binary(BinaryOp::Sub, &a, &b).unwrap();
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn binary_broadcast_row() {
        // [2,3] + [1,3] : bias-add pattern.
        let a = t(vec![2, 3], vec![1.0; 6]);
        let b = t(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let y = binary(BinaryOp::Add, &a, &b).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn binary_broadcast_left() {
        let a = t(vec![2, 1], vec![1.0, 2.0]);
        let b = t(vec![2, 3], vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let y = binary(BinaryOp::Mul, &a, &b).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn binary_incompatible_shapes() {
        let a = t(vec![2, 3], vec![0.0; 6]);
        let b = t(vec![2, 2], vec![0.0; 4]);
        assert!(binary(BinaryOp::Add, &a, &b).is_err());
    }

    #[test]
    fn scalar_op() {
        let x = t(vec![3], vec![1.0, 2.0, 3.0]);
        assert_eq!(
            binary_scalar(BinaryOp::Mul, &x, 2.0).data(),
            &[2.0, 4.0, 6.0]
        );
    }
}
