//! CPU reference operators.
//!
//! These functions define the ground-truth semantics of every primitive
//! operator the compiler handles. The op-kind enums ([`UnaryOp`],
//! [`BinaryOp`], [`ReduceOp`]) are shared with the IR and with the kernel
//! interpreter so that a single scalar semantics exists in the codebase.

mod elementwise;
mod matmul;
mod reduce;

pub mod composite;
pub mod viewed;

pub use elementwise::{binary, binary_scalar, unary};
pub use matmul::{batched_matmul, matmul};
pub use reduce::{broadcast_to, reduce};

/// Element-wise unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `e^x`
    Exp,
    /// `-x`
    Neg,
    /// `sqrt(x)`
    Sqrt,
    /// `x * x`
    Sqr,
    /// `1 / x`
    Recip,
    /// `max(x, 0)`
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// `tanh(x)`
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// SiLU / swish: `x * sigmoid(x)`.
    Silu,
    /// Natural logarithm.
    Log,
    /// Absolute value.
    Abs,
    /// Identity (used for explicit copies in schedules).
    Identity,
}

impl UnaryOp {
    /// Scalar semantics of the operator.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            UnaryOp::Exp => x.exp(),
            UnaryOp::Neg => -x,
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Sqr => x * x,
            UnaryOp::Recip => 1.0 / x,
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Gelu => {
                // tanh approximation used by BERT/GPT implementations.
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Silu => x / (1.0 + (-x).exp()),
            UnaryOp::Log => x.ln(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Identity => x,
        }
    }

    /// Short lowercase name (used in IR dumps).
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Exp => "exp",
            UnaryOp::Neg => "neg",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Sqr => "sqr",
            UnaryOp::Recip => "recip",
            UnaryOp::Relu => "relu",
            UnaryOp::Gelu => "gelu",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Silu => "silu",
            UnaryOp::Log => "log",
            UnaryOp::Abs => "abs",
            UnaryOp::Identity => "id",
        }
    }
}

/// Element-wise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `max(a, b)`
    Max,
    /// `min(a, b)`
    Min,
}

impl BinaryOp {
    /// Scalar semantics of the operator.
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// Short lowercase name (used in IR dumps).
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }
}

/// Reduction operators (the All-to-One sources of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Running sum; identity 0.
    Sum,
    /// Running maximum; identity −∞.
    Max,
    /// Arithmetic mean (sum divided by extent on finalization).
    Mean,
}

impl ReduceOp {
    /// Identity element of the aggregation.
    pub fn identity(self) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
        }
    }

    /// Combines an accumulator with a new value.
    pub fn combine(self, acc: f32, x: f32) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => acc + x,
            ReduceOp::Max => acc.max(x),
        }
    }

    /// Finalizes an accumulator given the reduced extent.
    pub fn finalize(self, acc: f32, extent: usize) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Max => acc,
            ReduceOp::Mean => acc / extent as f32,
        }
    }

    /// Short lowercase name (used in IR dumps).
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Mean => "mean",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Relu.eval(-2.0), 0.0);
        assert_eq!(UnaryOp::Relu.eval(3.0), 3.0);
        assert!((UnaryOp::Exp.eval(0.0) - 1.0).abs() < 1e-6);
        assert_eq!(UnaryOp::Neg.eval(2.0), -2.0);
        assert_eq!(UnaryOp::Sqr.eval(3.0), 9.0);
        assert!((UnaryOp::Sigmoid.eval(0.0) - 0.5).abs() < 1e-6);
        assert!((UnaryOp::Silu.eval(0.0)).abs() < 1e-6);
        assert_eq!(UnaryOp::Identity.eval(1.5), 1.5);
        assert!((UnaryOp::Log.eval(std::f32::consts::E) - 1.0).abs() < 1e-6);
        assert_eq!(UnaryOp::Abs.eval(-3.0), 3.0);
    }

    #[test]
    fn gelu_is_monotone_near_origin() {
        let g = |x: f32| UnaryOp::Gelu.eval(x);
        assert!(g(-1.0) < g(0.0));
        assert!(g(0.0) < g(1.0));
        assert!((g(0.0)).abs() < 1e-6);
    }

    #[test]
    fn binary_semantics() {
        assert_eq!(BinaryOp::Add.eval(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.eval(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::Mul.eval(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Div.eval(3.0, 2.0), 1.5);
        assert_eq!(BinaryOp::Max.eval(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::Min.eval(2.0, 3.0), 2.0);
    }

    #[test]
    fn reduce_semantics() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Max.identity(), f32::NEG_INFINITY);
        assert_eq!(ReduceOp::Sum.combine(1.0, 2.0), 3.0);
        assert_eq!(ReduceOp::Max.combine(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Mean.finalize(10.0, 4), 2.5);
        assert_eq!(ReduceOp::Sum.finalize(10.0, 4), 10.0);
    }
}
