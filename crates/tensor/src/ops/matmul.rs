//! Matrix-multiplication reference operators.

use super::viewed;
use crate::error::{Result, TensorError};
use crate::scratch::ScratchPool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// 2-D matrix multiplication `C[M,N] = A · B`.
///
/// When `transpose_b` is false, `B` has shape `[K, N]`; when true, `B` has
/// shape `[N, K]` (the layout used by the paper's `QK = GEMM(Query, Key)`
/// where both operands are `[rows, K]`).
pub fn matmul(a: &Tensor, b: &Tensor, transpose_b: bool) -> Result<Tensor> {
    viewed::matmul(
        &a.view(),
        &b.view(),
        transpose_b,
        &mut ScratchPool::disabled(),
    )
}

/// Batched matrix multiplication over one leading batch dimension.
///
/// `A` is `[B, M, K]`; `B` is `[B, K, N]` (or `[B, N, K]` when
/// `transpose_b`). Used for per-head attention GEMMs.
pub fn batched_matmul(a: &Tensor, b: &Tensor, transpose_b: bool) -> Result<Tensor> {
    if a.shape().rank() != 3 || b.shape().rank() != 3 {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul(rank)",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let batch = a.shape().dim(0)?;
    if b.shape().dim(0)? != batch {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul(batch)",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let (m, k) = (a.shape().dim(1)?, a.shape().dim(2)?);
    let n = if transpose_b {
        b.shape().dim(1)?
    } else {
        b.shape().dim(2)?
    };

    let mut out = Tensor::zeros(Shape::new(vec![batch, m, n]), a.dtype());
    for bi in 0..batch {
        let a_slice = slice_batch(a, bi, m, k);
        let b_rows = if transpose_b { n } else { k };
        let b_cols = if transpose_b { k } else { n };
        let b_slice = slice_batch(b, bi, b_rows, b_cols);
        let c = matmul(&a_slice, &b_slice, transpose_b)?;
        let dst = &mut out.data_mut()[bi * m * n..(bi + 1) * m * n];
        dst.copy_from_slice(c.data());
    }
    Ok(out)
}

fn slice_batch(t: &Tensor, batch: usize, rows: usize, cols: usize) -> Tensor {
    let start = batch * rows * cols;
    Tensor::from_data(
        Shape::new(vec![rows, cols]),
        t.dtype(),
        t.data()[start..start + rows * cols].to_vec(),
    )
    .expect("slice volume matches")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn matmul_basic() {
        let a = t(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b, false).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_b_matches_manual_transpose() {
        let a = Tensor::random(Shape::new(vec![4, 5]), DType::F32, 1);
        let b = Tensor::random(Shape::new(vec![3, 5]), DType::F32, 2);
        // Transpose b by hand into [5,3].
        let mut bt = Tensor::zeros(Shape::new(vec![5, 3]), DType::F32);
        for i in 0..3 {
            for j in 0..5 {
                bt.set(&[j, i], b.at(&[i, j]));
            }
        }
        let c1 = matmul(&a, &b, true).unwrap();
        let c2 = matmul(&a, &bt, false).unwrap();
        assert!(c1.allclose(&c2, 1e-5));
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = t(vec![2, 3], vec![0.0; 6]);
        let b = t(vec![4, 2], vec![0.0; 8]);
        assert!(matmul(&a, &b, false).is_err());
    }

    #[test]
    fn batched_matmul_matches_per_batch() {
        let a = Tensor::random(Shape::new(vec![2, 3, 4]), DType::F32, 3);
        let b = Tensor::random(Shape::new(vec![2, 4, 5]), DType::F32, 4);
        let c = batched_matmul(&a, &b, false).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3, 5]);
        // Check batch 1 against a manual 2-D matmul.
        let a1 = t(vec![3, 4], a.data()[12..24].to_vec());
        let b1 = t(vec![4, 5], b.data()[20..40].to_vec());
        let c1 = matmul(&a1, &b1, false).unwrap();
        assert_eq!(&c.data()[15..30], c1.data());
    }

    #[test]
    fn batched_matmul_batch_mismatch() {
        let a = Tensor::zeros(Shape::new(vec![2, 3, 4]), DType::F32);
        let b = Tensor::zeros(Shape::new(vec![3, 4, 5]), DType::F32);
        assert!(batched_matmul(&a, &b, false).is_err());
    }
}
