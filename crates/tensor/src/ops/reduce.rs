//! Reduction and broadcast reference operators.

use super::{viewed, ReduceOp};
use crate::error::Result;
use crate::scratch::ScratchPool;
use crate::tensor::Tensor;

/// Reduces along dimension `dim`, keeping it with extent 1.
///
/// Keeping the reduced dimension (as extent 1) matches how the SMG
/// abstraction treats reduction outputs: the dimension becomes a
/// placeholder ("-" in the paper's notation) but still exists in the fused
/// space.
pub fn reduce(op: ReduceOp, x: &Tensor, dim: usize) -> Result<Tensor> {
    viewed::reduce(op, &x.view(), dim, &mut ScratchPool::disabled())
}

/// Broadcasts a tensor with extent 1 in `dim` to extent `extent`.
///
/// This is the explicit form of the One-to-All mapping a broadcast
/// introduces; element-wise ops also accept implicit broadcasts, but the
/// compiler sometimes materializes broadcasts when transforming dataflow.
pub fn broadcast_to(x: &Tensor, dim: usize, extent: usize) -> Result<Tensor> {
    viewed::broadcast_to(&x.view(), dim, extent, &mut ScratchPool::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn reduce_sum_rows() {
        let x = t(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = reduce(ReduceOp::Sum, &x, 1).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1]);
        assert_eq!(y.data(), &[6.0, 15.0]);
    }

    #[test]
    fn reduce_max_cols() {
        let x = t(vec![2, 3], vec![1.0, 9.0, 3.0, 4.0, 5.0, 6.0]);
        let y = reduce(ReduceOp::Max, &x, 0).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3]);
        assert_eq!(y.data(), &[4.0, 9.0, 6.0]);
    }

    #[test]
    fn reduce_mean() {
        let x = t(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = reduce(ReduceOp::Mean, &x, 1).unwrap();
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn reduce_3d_middle_dim() {
        let x = Tensor::random(Shape::new(vec![2, 3, 4]), DType::F32, 5);
        let y = reduce(ReduceOp::Sum, &x, 1).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1, 4]);
        let mut expect = 0.0;
        for j in 0..3 {
            expect += x.at(&[1, j, 2]);
        }
        assert!((y.at(&[1, 0, 2]) - expect).abs() < 1e-5);
    }

    #[test]
    fn reduce_rejects_bad_dim() {
        let x = Tensor::zeros(Shape::new(vec![2]), DType::F32);
        assert!(reduce(ReduceOp::Sum, &x, 1).is_err());
    }

    #[test]
    fn broadcast_round_trip() {
        let x = t(vec![2, 1], vec![3.0, 4.0]);
        let y = broadcast_to(&x, 1, 3).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[3.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn broadcast_requires_unit_extent() {
        let x = t(vec![2, 2], vec![0.0; 4]);
        assert!(broadcast_to(&x, 1, 3).is_err());
    }
}
