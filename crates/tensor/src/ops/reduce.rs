//! Reduction and broadcast reference operators.

use super::ReduceOp;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Reduces along dimension `dim`, keeping it with extent 1.
///
/// Keeping the reduced dimension (as extent 1) matches how the SMG
/// abstraction treats reduction outputs: the dimension becomes a
/// placeholder ("-" in the paper's notation) but still exists in the fused
/// space.
pub fn reduce(op: ReduceOp, x: &Tensor, dim: usize) -> Result<Tensor> {
    let rank = x.shape().rank();
    if dim >= rank {
        return Err(TensorError::DimOutOfRange { dim, rank });
    }
    let extent = x.shape().dim(dim)?;
    let out_shape = x.shape().with_dim(dim, 1)?;
    let mut out = Tensor::full(out_shape.clone(), x.dtype(), op.identity());

    let in_strides = x.shape().strides();
    let out_strides = out_shape.strides();
    let out_volume = out_shape.volume();
    let xd = x.data();
    let od = out.data_mut();

    for (out_lin, slot) in od.iter_mut().enumerate().take(out_volume) {
        // Decode the output index, then walk the reduced dimension.
        let mut base = 0usize;
        let mut rem = out_lin;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            base += idx * in_strides[d];
        }
        let mut acc = op.identity();
        for r in 0..extent {
            acc = op.combine(acc, xd[base + r * in_strides[dim]]);
        }
        *slot = op.finalize(acc, extent);
    }
    Ok(out)
}

/// Broadcasts a tensor with extent 1 in `dim` to extent `extent`.
///
/// This is the explicit form of the One-to-All mapping a broadcast
/// introduces; element-wise ops also accept implicit broadcasts, but the
/// compiler sometimes materializes broadcasts when transforming dataflow.
pub fn broadcast_to(x: &Tensor, dim: usize, extent: usize) -> Result<Tensor> {
    let rank = x.shape().rank();
    if dim >= rank {
        return Err(TensorError::DimOutOfRange { dim, rank });
    }
    if x.shape().dim(dim)? != 1 {
        return Err(TensorError::InvalidShape(format!(
            "broadcast_to requires extent 1 in dim {dim}, got shape {}",
            x.shape()
        )));
    }
    let out_shape = x.shape().with_dim(dim, extent)?;
    let mut out = Tensor::zeros(out_shape.clone(), x.dtype());
    let in_strides = x.shape().strides();
    let out_strides = out_shape.strides();
    let volume = out_shape.volume();
    let xd = x.data();
    let od = out.data_mut();
    for (lin, slot) in od.iter_mut().enumerate().take(volume) {
        let mut rem = lin;
        let mut src = 0usize;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            if d != dim {
                src += idx * in_strides[d];
            }
        }
        *slot = xd[src];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn reduce_sum_rows() {
        let x = t(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = reduce(ReduceOp::Sum, &x, 1).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1]);
        assert_eq!(y.data(), &[6.0, 15.0]);
    }

    #[test]
    fn reduce_max_cols() {
        let x = t(vec![2, 3], vec![1.0, 9.0, 3.0, 4.0, 5.0, 6.0]);
        let y = reduce(ReduceOp::Max, &x, 0).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3]);
        assert_eq!(y.data(), &[4.0, 9.0, 6.0]);
    }

    #[test]
    fn reduce_mean() {
        let x = t(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = reduce(ReduceOp::Mean, &x, 1).unwrap();
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn reduce_3d_middle_dim() {
        let x = Tensor::random(Shape::new(vec![2, 3, 4]), DType::F32, 5);
        let y = reduce(ReduceOp::Sum, &x, 1).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1, 4]);
        let mut expect = 0.0;
        for j in 0..3 {
            expect += x.at(&[1, j, 2]);
        }
        assert!((y.at(&[1, 0, 2]) - expect).abs() < 1e-5);
    }

    #[test]
    fn reduce_rejects_bad_dim() {
        let x = Tensor::zeros(Shape::new(vec![2]), DType::F32);
        assert!(reduce(ReduceOp::Sum, &x, 1).is_err());
    }

    #[test]
    fn broadcast_round_trip() {
        let x = t(vec![2, 1], vec![3.0, 4.0]);
        let y = broadcast_to(&x, 1, 3).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[3.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn broadcast_requires_unit_extent() {
        let x = t(vec![2, 2], vec![0.0; 4]);
        assert!(broadcast_to(&x, 1, 3).is_err());
    }
}
