//! View-based operator kernels with scratch-buffer reuse.
//!
//! These are the same reference semantics as the plain `&Tensor`
//! operators in this module's siblings — in fact the plain operators
//! delegate here — but they accept zero-copy [`TensorView`] operands and
//! draw their output buffers from a [`ScratchPool`], so the kernel
//! interpreter can evaluate a block tile without cloning inputs or
//! allocating outputs.
//!
//! Floating-point evaluation order is identical to the historical dense
//! implementations (row-major element order, `i/j/k` GEMM loop nest),
//! which keeps pooled, viewed, and dense execution bit-identical.
//!
//! Contiguous operands take stride-1 fast paths: slice-to-slice loops
//! for element-wise ops, an order-preserving 4-wide unrolled inner loop
//! for reductions and dot products, and a cache-friendly `i/k/j` loop
//! for the untransposed GEMM. Every fast path performs the *same*
//! floating-point operations in the *same* order as the generic strided
//! path (unrolling only batches loop control, never reassociates), so
//! which path runs is unobservable in the results — the engine's
//! bit-identical-at-every-thread-count invariant does not depend on
//! contiguity being deterministic, though it is.

use super::{BinaryOp, ReduceOp, UnaryOp};
use crate::error::{Result, TensorError};
use crate::scratch::ScratchPool;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::view::TensorView;

/// Applies a unary operator element-wise.
pub fn unary(op: UnaryOp, x: &TensorView, pool: &mut ScratchPool) -> Tensor {
    let volume = x.volume();
    let mut out = pool.take(volume);
    if let Some(src) = x.as_slice() {
        for (slot, &v) in out.iter_mut().zip(src) {
            *slot = op.eval(v);
        }
    } else {
        let dec = x.shape().strides();
        let strides = x.strides();
        let xd = x.data();
        for (lin, slot) in out.iter_mut().enumerate() {
            *slot = op.eval(xd[decode(lin, &dec, strides)]);
        }
    }
    Tensor::from_data(x.shape().clone(), x.dtype(), out).expect("unary preserves volume")
}

/// Applies `op(x, scalar)` element-wise.
pub fn binary_scalar(op: BinaryOp, x: &TensorView, scalar: f32, pool: &mut ScratchPool) -> Tensor {
    let volume = x.volume();
    let mut out = pool.take(volume);
    if let Some(src) = x.as_slice() {
        for (slot, &v) in out.iter_mut().zip(src) {
            *slot = op.eval(v, scalar);
        }
    } else {
        let dec = x.shape().strides();
        let strides = x.strides();
        let xd = x.data();
        for (lin, slot) in out.iter_mut().enumerate() {
            *slot = op.eval(xd[decode(lin, &dec, strides)], scalar);
        }
    }
    Tensor::from_data(x.shape().clone(), x.dtype(), out).expect("binary_scalar preserves volume")
}

/// Applies a binary operator element-wise with limited broadcasting
/// (either operand may have extent 1 where the other is larger; ranks
/// must match).
pub fn binary(
    op: BinaryOp,
    a: &TensorView,
    b: &TensorView,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let out_shape = a.shape().broadcast_with(b.shape())?;
    let rank = out_shape.rank();
    let volume = out_shape.volume();

    // Fast path: same shape, both contiguous — one zip loop, no index
    // arithmetic. Element-wise, so per-element order is unchanged.
    if a.dims() == b.dims() {
        if let (Some(xs), Some(ys)) = (a.as_slice(), b.as_slice()) {
            let mut data = pool.take(volume);
            for ((slot, &x), &y) in data.iter_mut().zip(xs).zip(ys) {
                *slot = op.eval(x, y);
            }
            return Ok(Tensor::from_data(out_shape, a.dtype(), data).expect("volume matches"));
        }
    }

    let out_strides = out_shape.strides();
    let a_strides = masked_strides(a, &out_shape);
    let b_strides = masked_strides(b, &out_shape);

    let mut data = pool.take(volume);
    let a_data = a.data();
    let b_data = b.data();
    for (lin, slot) in data.iter_mut().enumerate() {
        let mut a_off = 0;
        let mut b_off = 0;
        let mut rem = lin;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            a_off += idx * a_strides[d];
            b_off += idx * b_strides[d];
        }
        *slot = op.eval(a_data[a_off], b_data[b_off]);
    }
    Ok(Tensor::from_data(out_shape, a.dtype(), data).expect("volume matches"))
}

/// Reduces along dimension `dim`, keeping it with extent 1.
pub fn reduce(op: ReduceOp, x: &TensorView, dim: usize, pool: &mut ScratchPool) -> Result<Tensor> {
    let rank = x.rank();
    if dim >= rank {
        return Err(TensorError::DimOutOfRange { dim, rank });
    }
    let extent = x.shape().dim(dim)?;
    let out_shape = x.shape().with_dim(dim, 1)?;
    let out_volume = out_shape.volume();
    let out_strides = out_shape.strides();
    let in_strides = x.strides();
    let xd = x.data();

    let stride1 = in_strides[dim] == 1;
    let mut out = pool.take(out_volume);
    for (out_lin, slot) in out.iter_mut().enumerate() {
        // Decode the output index, then walk the reduced dimension.
        let mut base = 0usize;
        let mut rem = out_lin;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            base += idx * in_strides[d];
        }
        let mut acc = op.identity();
        if stride1 {
            // Stride-1 fast path: fold over the contiguous run, 4-wide
            // unrolled. The combine chain is sequential left-to-right —
            // identical order to the strided loop below, so the result
            // is bit-identical.
            let run = &xd[base..base + extent];
            let mut chunks = run.chunks_exact(4);
            for c in &mut chunks {
                acc = op.combine(acc, c[0]);
                acc = op.combine(acc, c[1]);
                acc = op.combine(acc, c[2]);
                acc = op.combine(acc, c[3]);
            }
            for &v in chunks.remainder() {
                acc = op.combine(acc, v);
            }
        } else {
            for r in 0..extent {
                acc = op.combine(acc, xd[base + r * in_strides[dim]]);
            }
        }
        *slot = op.finalize(acc, extent);
    }
    Tensor::from_data(out_shape, x.dtype(), out)
}

/// Broadcasts a view with extent 1 in `dim` to extent `extent`.
pub fn broadcast_to(
    x: &TensorView,
    dim: usize,
    extent: usize,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let rank = x.rank();
    if dim >= rank {
        return Err(TensorError::DimOutOfRange { dim, rank });
    }
    if x.shape().dim(dim)? != 1 {
        return Err(TensorError::InvalidShape(format!(
            "broadcast_to requires extent 1 in dim {dim}, got shape {}",
            x.shape()
        )));
    }
    let out_shape = x.shape().with_dim(dim, extent)?;
    let out_strides = out_shape.strides();
    let in_strides = x.strides();
    let volume = out_shape.volume();
    let xd = x.data();

    let mut out = pool.take(volume);
    for (lin, slot) in out.iter_mut().enumerate() {
        let mut rem = lin;
        let mut src = 0usize;
        for d in 0..rank {
            let idx = rem / out_strides[d];
            rem %= out_strides[d];
            if d != dim {
                src += idx * in_strides[d];
            }
        }
        *slot = xd[src];
    }
    Tensor::from_data(out_shape, x.dtype(), out)
}

/// 2-D matrix multiplication `C[M,N] = A · B` over views.
///
/// When `transpose_b` is false, `B` has shape `[K, N]`; when true, `B`
/// has shape `[N, K]`.
pub fn matmul(
    a: &TensorView,
    b: &TensorView,
    transpose_b: bool,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul(rank)",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let (m, k) = (a.shape().dim(0)?, a.shape().dim(1)?);
    let (n, bk) = if transpose_b {
        (b.shape().dim(0)?, b.shape().dim(1)?)
    } else {
        (b.shape().dim(1)?, b.shape().dim(0)?)
    };
    if k != bk {
        return Err(TensorError::ShapeMismatch {
            op: "matmul(inner)",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }

    let (as0, as1) = (a.strides()[0], a.strides()[1]);
    let (bs0, bs1) = (b.strides()[0], b.strides()[1]);
    let ad = a.data();
    let bd = b.data();
    let mut out = pool.take(m * n);
    if transpose_b && as1 == 1 && bs1 == 1 && k > 0 {
        // Row-dot fast path: both operand rows are stride-1 slices, so
        // each output is a bounds-check-free dot product, 4-wide
        // unrolled with a single sequential accumulator (same add order
        // as the generic loop).
        for i in 0..m {
            let arow = &ad[i * as0..i * as0 + k];
            for j in 0..n {
                let brow = &bd[j * bs0..j * bs0 + k];
                let mut acc = 0.0f32;
                let mut ac = arow.chunks_exact(4);
                let mut bc = brow.chunks_exact(4);
                for (ca, cb) in (&mut ac).zip(&mut bc) {
                    acc += ca[0] * cb[0];
                    acc += ca[1] * cb[1];
                    acc += ca[2] * cb[2];
                    acc += ca[3] * cb[3];
                }
                for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
    } else if !transpose_b && bs1 == 1 && n > 0 {
        // `i/k/j` fast path: walk B by stride-1 rows, accumulating into
        // the (zero-initialized) output row. For a fixed (i, j) the
        // additions still happen in ascending-k order starting from
        // zero — exactly the generic loop's order — so results are
        // bit-identical while B is now read cache-friendly.
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let av = ad[i * as0 + kk * as1];
                let brow = &bd[kk * bs0..kk * bs0 + n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    } else {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    let bv = if transpose_b {
                        bd[j * bs0 + kk * bs1]
                    } else {
                        bd[kk * bs0 + j * bs1]
                    };
                    acc += ad[i * as0 + kk * as1] * bv;
                }
                out[i * n + j] = acc;
            }
        }
    }
    Tensor::from_data(Shape::new(vec![m, n]), a.dtype(), out)
}

/// Linear index of a row-major position under view strides.
fn decode(lin: usize, dec: &[usize], strides: &[usize]) -> usize {
    let mut rem = lin;
    let mut off = 0usize;
    for (&d, &s) in dec.iter().zip(strides) {
        let i = rem / d.max(1);
        rem %= d.max(1);
        off += i * s;
    }
    off
}

/// Strides of `v` viewed in `out` shape: broadcast dims get stride 0.
fn masked_strides(v: &TensorView, out: &Shape) -> Vec<usize> {
    v.dims()
        .iter()
        .zip(out.dims().iter())
        .zip(v.strides())
        .map(|((&td, &od), &s)| if td == od { s } else { 0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_data(Shape::new(dims), DType::F32, data).unwrap()
    }

    #[test]
    fn strided_operands_match_materialized() {
        let x = t(vec![4, 4], (0..16).map(|i| i as f32).collect());
        let v = x.slice(&[(1, 3), (1, 4)]).unwrap();
        let dense = v.to_tensor();
        let mut pool = ScratchPool::new();

        assert_eq!(
            unary(UnaryOp::Sqr, &v, &mut pool),
            unary(UnaryOp::Sqr, &dense.view(), &mut pool)
        );
        assert_eq!(
            reduce(ReduceOp::Sum, &v, 1, &mut pool).unwrap(),
            reduce(ReduceOp::Sum, &dense.view(), 1, &mut pool).unwrap()
        );
        let col = x.slice(&[(1, 3), (0, 1)]).unwrap();
        assert_eq!(
            binary(BinaryOp::Sub, &v, &col, &mut pool).unwrap(),
            binary(
                BinaryOp::Sub,
                &dense.view(),
                &col.to_tensor().view(),
                &mut pool
            )
            .unwrap()
        );
    }

    #[test]
    fn strided_matmul_matches_dense() {
        let x = t(vec![3, 4], (0..12).map(|i| i as f32).collect());
        let y = t(vec![4, 4], (0..16).map(|i| (i as f32) * 0.5).collect());
        let a = x.slice(&[(0, 3), (1, 4)]).unwrap();
        let b = y.slice(&[(0, 3), (1, 4)]).unwrap();
        let mut pool = ScratchPool::new();
        let c = matmul(&a, &b, false, &mut pool).unwrap();
        let c_dense = matmul(
            &a.to_tensor().view(),
            &b.to_tensor().view(),
            false,
            &mut pool,
        )
        .unwrap();
        assert_eq!(c, c_dense);
        // transpose_b path as well
        let ct = matmul(&a, &b, true, &mut pool).unwrap();
        let ct_dense = matmul(
            &a.to_tensor().view(),
            &b.to_tensor().view(),
            true,
            &mut pool,
        )
        .unwrap();
        assert_eq!(ct, ct_dense);
    }

    #[test]
    fn pooled_results_are_bit_identical_to_fresh() {
        let x = Tensor::random(Shape::new(vec![8, 8]), DType::F32, 11);
        let mut pool = ScratchPool::new();
        let mut fresh = ScratchPool::disabled();
        // Warm the pool so the second round reuses buffers.
        let w = unary(UnaryOp::Gelu, &x.view(), &mut pool);
        pool.recycle_tensor(w);
        let pooled = unary(UnaryOp::Gelu, &x.view(), &mut pool);
        let direct = unary(UnaryOp::Gelu, &x.view(), &mut fresh);
        assert!(pool.hits() > 0);
        assert_eq!(pooled, direct);
    }
}
