//! Process-wide tensor-allocation counters.
//!
//! Counts *fresh data-buffer acquisitions*: tensor constructors that
//! materialize a new `Vec<f32>` ([`Tensor::zeros`](crate::Tensor::zeros),
//! `full`, `random`, `reshape`, `quantized`, `Clone`,
//! [`TensorView::to_tensor`](crate::TensorView::to_tensor)) and
//! [`ScratchPool`](crate::ScratchPool) misses. Pool hits and zero-copy
//! views are free and therefore not counted — the counter is the metric
//! benchmarks use to show that the execution engine recycles buffers
//! instead of allocating per block/tile.
//!
//! A second pair of counters tracks recycling-enabled pools only:
//! [`pool_hits`] (a `take` served from recycled storage) and
//! [`pool_misses`] (a `take` that had to allocate). Because the
//! execution engine's worker pools now persist across
//! `execute_kernel_with` calls, the hit ratio measures *cross-call*
//! scratch reuse: after a warm-up execution, repeated executions should
//! serve ≥90% of takes from recycled buffers.
//!
//! `Tensor::from_data` adopts a caller-provided buffer and is *not*
//! counted; buffers produced by a pool are counted once, at `take` time.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Records one fresh buffer allocation (crate-internal).
pub(crate) fn record_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records one pooled `take` served from recycled storage
/// (crate-internal).
pub(crate) fn record_pool_hit() {
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one pooled `take` that had to allocate fresh storage
/// (crate-internal; disabled pools do not count as misses).
pub(crate) fn record_pool_miss() {
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Number of fresh tensor-buffer allocations since the last
/// [`reset_allocations`].
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Number of pooled takes served from recycled storage since the last
/// [`reset_pool_stats`].
pub fn pool_hits() -> u64 {
    POOL_HITS.load(Ordering::Relaxed)
}

/// Number of pooled takes that allocated fresh storage since the last
/// [`reset_pool_stats`].
pub fn pool_misses() -> u64 {
    POOL_MISSES.load(Ordering::Relaxed)
}

/// Fraction of pooled takes served from recycled storage; `1.0` when
/// no pooled take has happened yet.
pub fn pool_reuse_ratio() -> f64 {
    let hits = pool_hits();
    let total = hits + pool_misses();
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Resets the allocation counter to zero.
pub fn reset_allocations() {
    ALLOCS.store(0, Ordering::Relaxed);
}

/// Resets the pool hit/miss counters to zero.
pub fn reset_pool_stats() {
    POOL_HITS.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::{DType, Shape, Tensor};

    #[test]
    fn constructors_and_clones_count() {
        // Other tests run concurrently, so measure deltas with >= bounds.
        let before = super::allocations();
        let t = Tensor::zeros(Shape::new(vec![4]), DType::F32);
        let _c = t.clone();
        let _q = t.quantized();
        let _r = t.reshape(Shape::new(vec![2, 2])).unwrap();
        let _v = t.view(); // free
        assert!(super::allocations() >= before + 4);
    }
}
