//! Process-wide tensor-allocation counter.
//!
//! Counts *fresh data-buffer acquisitions*: tensor constructors that
//! materialize a new `Vec<f32>` ([`Tensor::zeros`](crate::Tensor::zeros),
//! `full`, `random`, `reshape`, `quantized`, `Clone`,
//! [`TensorView::to_tensor`](crate::TensorView::to_tensor)) and
//! [`ScratchPool`](crate::ScratchPool) misses. Pool hits and zero-copy
//! views are free and therefore not counted — the counter is the metric
//! benchmarks use to show that the execution engine recycles buffers
//! instead of allocating per block/tile.
//!
//! `Tensor::from_data` adopts a caller-provided buffer and is *not*
//! counted; buffers produced by a pool are counted once, at `take` time.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one fresh buffer allocation (crate-internal).
pub(crate) fn record_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Number of fresh tensor-buffer allocations since the last
/// [`reset_allocations`].
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Resets the allocation counter to zero.
pub fn reset_allocations() {
    ALLOCS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::{DType, Shape, Tensor};

    #[test]
    fn constructors_and_clones_count() {
        // Other tests run concurrently, so measure deltas with >= bounds.
        let before = super::allocations();
        let t = Tensor::zeros(Shape::new(vec![4]), DType::F32);
        let _c = t.clone();
        let _q = t.quantized();
        let _r = t.reshape(Shape::new(vec![2, 2])).unwrap();
        let _v = t.view(); // free
        assert!(super::allocations() >= before + 4);
    }
}
