//! Error types for tensor operations.

use crate::shape::Shape;
use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and the reference operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of data elements did not match the shape volume.
    DataLenMismatch {
        /// Expected number of elements (shape volume).
        expected: usize,
        /// Actual number of elements supplied.
        actual: usize,
    },
    /// Two operand shapes were incompatible for the requested operation.
    ShapeMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Shape,
        /// Right-hand operand shape.
        rhs: Shape,
    },
    /// A dimension index was out of range for the tensor rank.
    DimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// A shape with zero-sized or missing dimensions was rejected.
    InvalidShape(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLenMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank {rank}")
            }
            TensorError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::DataLenMismatch {
            expected: 6,
            actual: 4,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('4'));

        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: Shape::new(vec![2, 3]),
            rhs: Shape::new(vec![4, 5]),
        };
        assert!(e.to_string().contains("matmul"));

        let e = TensorError::DimOutOfRange { dim: 3, rank: 2 };
        assert!(e.to_string().contains("out of range"));
    }
}
