//! Element data types.
//!
//! Values are always *computed* in `f32`; the data type only controls the
//! per-element byte size seen by the GPU performance model, mirroring the
//! paper's FP16 evaluation setting.

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// IEEE-754 half precision (2 bytes). The paper's evaluation dtype.
    #[default]
    F16,
    /// IEEE-754 single precision (4 bytes).
    F32,
}

impl DType {
    /// Byte size of one element.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
        }
    }

    /// Rounds a value through this storage precision.
    ///
    /// `F16` snaps to the nearest IEEE-754 binary16 value (round to
    /// nearest even, with overflow to ±∞); `F32` is the identity. Used to
    /// study the numerical behaviour of fused schedules under half-
    /// precision storage.
    pub fn quantize(self, x: f32) -> f32 {
        match self {
            DType::F32 => x,
            DType::F16 => f16_round(x),
        }
    }
}

/// Round-trips an `f32` through IEEE-754 binary16.
fn f16_round(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xff) as i32 - 127;
    if exp > 15 {
        // Overflows half range (max finite ≈ 65504).
        return if x.abs() > 65504.0 + 16.0 {
            f32::INFINITY.copysign(x)
        } else {
            65504.0_f32.copysign(x)
        };
    }
    if exp < -24 {
        return 0.0_f32.copysign(x);
    }
    // Keep 10 mantissa bits (14 for subnormals), round to nearest even.
    let drop = if exp >= -14 {
        13
    } else {
        13 + (-14 - exp) as u32
    };
    let mask = (1u32 << drop) - 1;
    let half = 1u32 << (drop - 1);
    let frac = bits & mask;
    let mut kept = bits & !mask;
    if frac > half || (frac == half && (kept >> drop) & 1 == 1) {
        kept = kept.wrapping_add(1 << drop);
    }
    let _ = sign;
    f32::from_bits(kept)
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F16 => write!(f, "f16"),
            DType::F32 => write!(f, "f32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
    }

    #[test]
    fn default_is_f16() {
        assert_eq!(DType::default(), DType::F16);
    }

    #[test]
    fn f32_quantize_is_identity() {
        for x in [0.0f32, -1.5, 3.7e8, f32::INFINITY] {
            assert_eq!(DType::F32.quantize(x), x);
        }
    }

    #[test]
    fn f16_quantize_snaps_to_half_grid() {
        // Values exactly representable in binary16 survive.
        for x in [0.0f32, 1.0, -2.5, 0.5, 65504.0] {
            assert_eq!(DType::F16.quantize(x), x, "{x} should be exact");
        }
        // 1 + 2^-11 rounds back to 1 (half has 10 mantissa bits).
        let y = DType::F16.quantize(1.0 + 2f32.powi(-12));
        assert_eq!(y, 1.0);
        // Relative error bounded by 2^-11 for normal values.
        for x in [2.7348f32, -123.456, 0.001234, 4567.8] {
            let q = DType::F16.quantize(x);
            assert!(((q - x) / x).abs() <= 2f32.powi(-11), "{x} -> {q}");
        }
    }

    #[test]
    fn f16_quantize_handles_extremes() {
        assert_eq!(DType::F16.quantize(1e30), f32::INFINITY);
        assert_eq!(DType::F16.quantize(-1e30), f32::NEG_INFINITY);
        assert_eq!(DType::F16.quantize(1e-20), 0.0);
        assert!(DType::F16.quantize(f32::NAN).is_nan());
        // Subnormal half values survive with reduced precision.
        let tiny = 3.0e-7f32;
        let q = DType::F16.quantize(tiny);
        assert!(q > 0.0 && (q - tiny).abs() / tiny < 0.2);
    }
}
