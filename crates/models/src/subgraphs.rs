//! The evaluated subgraphs of paper Fig. 10.

use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};

/// A stack of `layers` MLP layers: `x ← relu(x·Wᵢ + bᵢ)` (Fig. 10(a)).
///
/// `m` is the number of rows (batch·tokens), `hidden` the feature width
/// (the paper fuses stacks with `N, K ≤ 256`).
pub fn mlp_stack(layers: usize, m: usize, hidden: usize) -> Graph {
    let mut g = Graph::new(format!("mlp{layers}x{hidden}"), DType::F16);
    let mut x = g.input("x", Shape::new(vec![m, hidden]));
    for i in 0..layers {
        let w = g.weight(format!("w{i}"), Shape::new(vec![hidden, hidden]));
        let b = g.weight(format!("b{i}"), Shape::new(vec![1, hidden]));
        let t = g.gemm(x, w, false).expect("mlp gemm");
        let t = g.binary(BinaryOp::Add, t, b).expect("mlp bias");
        x = g.unary(UnaryOp::Relu, t).expect("mlp relu");
    }
    g.mark_output(x);
    g
}

/// A simplified LSTM cell (Fig. 10(b)): two GEMMs whose results combine
/// through element-wise gates.
///
/// `batch` rows; `hidden` state features. The cuBLAS baseline maps each
/// of the five operators to one kernel (paper §6.1).
pub fn lstm_cell(batch: usize, hidden: usize) -> Graph {
    let mut g = Graph::new(format!("lstm{hidden}"), DType::F16);
    let x = g.input("x", Shape::new(vec![batch, hidden]));
    let h = g.input("h", Shape::new(vec![batch, hidden]));
    let wx = g.weight("wx", Shape::new(vec![hidden, hidden]));
    let wh = g.weight("wh", Shape::new(vec![hidden, hidden]));
    let b = g.weight("b", Shape::new(vec![1, hidden]));
    let gx = g.gemm(x, wx, false).expect("lstm gemm x");
    let gh = g.gemm(h, wh, false).expect("lstm gemm h");
    let s = g.binary(BinaryOp::Add, gx, gh).expect("lstm add");
    let s = g.binary(BinaryOp::Add, s, b).expect("lstm bias");
    let out = g.unary(UnaryOp::Tanh, s).expect("lstm tanh");
    g.mark_output(out);
    g
}

/// Row softmax over an `[m, n]` tensor.
pub fn softmax(m: usize, n: usize) -> Graph {
    let mut g = Graph::new(format!("softmax{m}x{n}"), DType::F16);
    let x = g.input("x", Shape::new(vec![m, n]));
    let mx = g.reduce(ReduceOp::Max, x, 1).expect("softmax max");
    let s = g.binary(BinaryOp::Sub, x, mx).expect("softmax sub");
    let e = g.unary(UnaryOp::Exp, s).expect("softmax exp");
    let z = g.reduce(ReduceOp::Sum, e, 1).expect("softmax sum");
    let d = g.binary(BinaryOp::Div, e, z).expect("softmax div");
    g.mark_output(d);
    g
}

/// LayerNorm over the rows of an `[m, n]` tensor (Fig. 10(c)): the exact
/// 9-operator memory-intensive chain of the paper.
pub fn layernorm(m: usize, n: usize) -> Graph {
    let mut g = Graph::new(format!("layernorm{m}x{n}"), DType::F16);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("ln_w", Shape::new(vec![1, n]));
    let b = g.weight("ln_b", Shape::new(vec![1, n]));
    let mean = g.reduce(ReduceOp::Mean, x, 1).expect("ln mean");
    let c = g.binary(BinaryOp::Sub, x, mean).expect("ln sub");
    let sq = g.unary(UnaryOp::Sqr, c).expect("ln sqr");
    let var = g.reduce(ReduceOp::Mean, sq, 1).expect("ln var");
    let veps = g.scalar(BinaryOp::Add, var, 1e-5).expect("ln eps");
    let std = g.unary(UnaryOp::Sqrt, veps).expect("ln sqrt");
    let norm = g.binary(BinaryOp::Div, c, std).expect("ln div");
    let sc = g.binary(BinaryOp::Mul, norm, w).expect("ln mul");
    let y = g.binary(BinaryOp::Add, sc, b).expect("ln add");
    g.mark_output(y);
    g
}

/// RMSNorm over the rows of an `[m, n]` tensor (Llama2's normalization).
pub fn rmsnorm(m: usize, n: usize) -> Graph {
    let mut g = Graph::new(format!("rmsnorm{m}x{n}"), DType::F16);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("rms_w", Shape::new(vec![1, n]));
    let sq = g.unary(UnaryOp::Sqr, x).expect("rms sqr");
    let ms = g.reduce(ReduceOp::Mean, sq, 1).expect("rms mean");
    let eps = g.scalar(BinaryOp::Add, ms, 1e-5).expect("rms eps");
    let rms = g.unary(UnaryOp::Sqrt, eps).expect("rms sqrt");
    let n1 = g.binary(BinaryOp::Div, x, rms).expect("rms div");
    let y = g.binary(BinaryOp::Mul, n1, w).expect("rms mul");
    g.mark_output(y);
    g
}

/// Per-head scaled-dot-product attention (Fig. 10(d)).
///
/// The graph operates on one `[seq, head_dim]` head; `instances` is set
/// to `batch × heads` (batch and head dimensions carry no dependencies —
/// paper footnote 2).
pub fn mha(batch: usize, heads: usize, seq: usize, head_dim: usize) -> Graph {
    let mut g = Graph::new(format!("mha_b{batch}h{heads}s{seq}d{head_dim}"), DType::F16);
    g.instances = batch * heads;
    let q = g.input("q", Shape::new(vec![seq, head_dim]));
    let k = g.input("k", Shape::new(vec![seq, head_dim]));
    let v = g.input("v", Shape::new(vec![seq, head_dim]));
    let qk = g.gemm(q, k, true).expect("mha qk");
    let sc = g
        .scalar(BinaryOp::Mul, qk, 1.0 / (head_dim as f32).sqrt())
        .expect("mha scale");
    let mx = g.reduce(ReduceOp::Max, sc, 1).expect("mha max");
    let sub = g.binary(BinaryOp::Sub, sc, mx).expect("mha sub");
    let e = g.unary(UnaryOp::Exp, sub).expect("mha exp");
    let s = g.reduce(ReduceOp::Sum, e, 1).expect("mha sum");
    let d = g.binary(BinaryOp::Div, e, s).expect("mha div");
    let out = g.gemm(d, v, false).expect("mha out");
    g.mark_output(out);
    g
}

/// Masked per-head attention: an additive mask lands on the scores
/// before the softmax (causal masks use −∞ above the diagonal).
pub fn masked_mha(batch: usize, heads: usize, seq: usize, head_dim: usize) -> Graph {
    let mut g = Graph::new(
        format!("masked_mha_b{batch}h{heads}s{seq}d{head_dim}"),
        DType::F16,
    );
    g.instances = batch * heads;
    let q = g.input("q", Shape::new(vec![seq, head_dim]));
    let k = g.input("k", Shape::new(vec![seq, head_dim]));
    let v = g.input("v", Shape::new(vec![seq, head_dim]));
    let mask = g.input("mask", Shape::new(vec![seq, seq]));
    let qk = g.gemm(q, k, true).expect("qk");
    let sc = g
        .scalar(BinaryOp::Mul, qk, 1.0 / (head_dim as f32).sqrt())
        .expect("scale");
    let masked = g.binary(BinaryOp::Add, sc, mask).expect("mask");
    let mx = g.reduce(ReduceOp::Max, masked, 1).expect("max");
    let sub = g.binary(BinaryOp::Sub, masked, mx).expect("sub");
    let e = g.unary(UnaryOp::Exp, sub).expect("exp");
    let su = g.reduce(ReduceOp::Sum, e, 1).expect("sum");
    let d = g.binary(BinaryOp::Div, e, su).expect("div");
    let out = g.gemm(d, v, false).expect("out");
    g.mark_output(out);
    g
}

/// Decode-phase attention: a single query row against a long KV cache
/// (the latency-critical shape of autoregressive inference).
pub fn mha_decode(batch: usize, heads: usize, kv_len: usize, head_dim: usize) -> Graph {
    let mut g = Graph::new(
        format!("mha_decode_b{batch}h{heads}kv{kv_len}d{head_dim}"),
        DType::F16,
    );
    g.instances = batch * heads;
    let q = g.input("q", Shape::new(vec![1, head_dim]));
    let k = g.input("k", Shape::new(vec![kv_len, head_dim]));
    let v = g.input("v", Shape::new(vec![kv_len, head_dim]));
    let qk = g.gemm(q, k, true).expect("qk");
    let sc = g
        .scalar(BinaryOp::Mul, qk, 1.0 / (head_dim as f32).sqrt())
        .expect("scale");
    let mx = g.reduce(ReduceOp::Max, sc, 1).expect("max");
    let sub = g.binary(BinaryOp::Sub, sc, mx).expect("sub");
    let e = g.unary(UnaryOp::Exp, sub).expect("exp");
    let su = g.reduce(ReduceOp::Sum, e, 1).expect("sum");
    let d = g.binary(BinaryOp::Div, e, su).expect("div");
    let out = g.gemm(d, v, false).expect("out");
    g.mark_output(out);
    g
}

/// A reduction-bound row sum: `y ← (Σₖ x) / k` over an `[m, k]` input
/// with `k ≫ m`.
///
/// The extreme aspect ratio leaves only `m` spatial blocks — far too
/// few to occupy a GPU — while all the work sits on the reduction
/// axis, making this the canonical shape where a split-K schedule
/// (parallel partial accumulators plus a combine fold) wins and a
/// purely spatial one cannot.
pub fn deep_reduce(m: usize, k: usize) -> Graph {
    let mut g = Graph::new(format!("reduce{k}x{m}"), DType::F16);
    let x = g.input("x", Shape::new(vec![m, k]));
    let s = g.reduce(ReduceOp::Sum, x, 1).expect("row sum");
    let d = g
        .scalar(BinaryOp::Mul, s, 1.0 / (k as f32))
        .expect("mean scale");
    g.mark_output(d);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::composite;
    use sf_tensor::Tensor;

    #[test]
    fn mlp_stack_shapes_and_op_count() {
        let g = mlp_stack(3, 64, 128);
        assert_eq!(g.ops().len(), 9);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.shape(g.outputs()[0]).dims(), &[64, 128]);
    }

    #[test]
    fn lstm_cell_has_five_ops() {
        // Matches the paper: "The cuBLAS implementation ends up with 5
        // unfused kernels, with each operator in Figure 10(b) mapping to
        // a kernel."
        let g = lstm_cell(64, 256);
        assert_eq!(g.ops().len(), 5);
    }

    #[test]
    fn layernorm_has_nine_ops() {
        // Fig. 10(c): "the LN subgraph is entirely composed of 9
        // memory-intensive operators".
        let g = layernorm(128, 256);
        assert_eq!(g.ops().len(), 9);
        let (ci, _mi) = {
            let mut ci = 0;
            let mut mi = 0;
            for op in g.ops() {
                match sf_ir::op_class(&op.kind) {
                    sf_ir::OpClass::ComputeIntensive => ci += 1,
                    sf_ir::OpClass::MemoryIntensive => mi += 1,
                }
            }
            (ci, mi)
        };
        assert_eq!(ci, 0, "LayerNorm must be all memory-intensive");
    }

    #[test]
    fn deep_reduce_is_a_row_mean() {
        let g = deep_reduce(4, 64);
        assert_eq!(g.name(), "reduce64x4");
        let bindings = g.random_bindings(9);
        let out = g.execute(&bindings).unwrap();
        let x = &bindings["x"];
        assert_eq!(out[0].shape().dims(), &[4, 1]);
        for i in 0..4 {
            let mean: f32 = (0..64).map(|j| x.at(&[i, j])).sum::<f32>() / 64.0;
            assert!((out[0].at(&[i, 0]) - mean).abs() < 1e-2);
        }
    }

    #[test]
    fn mha_instances_cover_batch_and_heads() {
        let g = mha(32, 16, 1024, 64);
        assert_eq!(g.instances, 512);
        assert_eq!(g.ops().len(), 8);
    }

    #[test]
    fn layernorm_matches_composite_reference() {
        let g = layernorm(8, 32);
        let bindings = g.random_bindings(3);
        let out = g.execute(&bindings).unwrap();
        let expect =
            composite::layernorm(&bindings["x"], &bindings["ln_w"], &bindings["ln_b"], 1e-5)
                .unwrap();
        assert!(out[0].allclose(&expect, 1e-4));
    }

    #[test]
    fn rmsnorm_matches_composite_reference() {
        let g = rmsnorm(8, 32);
        let bindings = g.random_bindings(4);
        let out = g.execute(&bindings).unwrap();
        let expect = composite::rmsnorm(&bindings["x"], &bindings["rms_w"], 1e-5).unwrap();
        assert!(out[0].allclose(&expect, 1e-4));
    }

    #[test]
    fn mha_matches_composite_attention() {
        let g = mha(1, 1, 32, 16);
        let bindings = g.random_bindings(5);
        let out = g.execute(&bindings).unwrap();
        let expect = composite::attention(&bindings["q"], &bindings["k"], &bindings["v"]).unwrap();
        assert!(out[0].allclose(&expect, 1e-4));
    }

    #[test]
    fn masked_mha_respects_the_mask() {
        // A -inf mask on the last column zeroes its attention weight:
        // the output must equal attention over the first columns only.
        let g = masked_mha(1, 1, 8, 4);
        let mut bindings = g.random_bindings(7);
        let mut mask = Tensor::zeros(Shape::new(vec![8, 8]), DType::F16);
        for i in 0..8 {
            mask.set(&[i, 7], -1e30);
        }
        bindings.insert("mask".to_string(), mask);
        let out = g.execute(&bindings).unwrap();
        // Row 0 of the output must not depend on v[7].
        let mut b2 = bindings.clone();
        let v = b2.get_mut("v").unwrap();
        for j in 0..4 {
            v.set(&[7, j], 999.0);
        }
        let out2 = g.execute(&b2).unwrap();
        assert!(out[0].allclose(&out2[0], 1e-3), "masked row leaked through");
    }

    #[test]
    fn decode_shape_is_single_row() {
        let g = mha_decode(4, 8, 512, 64);
        assert_eq!(g.instances, 32);
        assert_eq!(g.shape(g.outputs()[0]).dims(), &[1, 64]);
        let b = g.random_bindings(2);
        g.execute(&b).unwrap();
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let g = softmax(4, 64);
        let bindings = g.random_bindings(6);
        let out = g.execute(&bindings).unwrap();
        for i in 0..4 {
            let sum: f32 = (0..64).map(|j| out[0].at(&[i, j])).sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        let _ = Tensor::zeros(Shape::new(vec![1]), DType::F16);
    }
}
