//! Workload model zoo for the SpaceFusion evaluation.
//!
//! * [`subgraphs`] — the evaluated subgraphs of paper Fig. 10: MLP layer
//!   stacks, the simplified LSTM cell, LayerNorm, RMSNorm and multi-head
//!   attention, built as `sf-ir` graphs.
//! * [`transformer`] — the five end-to-end models of §6.2 (BERT, ALBERT,
//!   T5, ViT, Llama2-7B) described as lists of per-layer subprograms with
//!   repetition counts. Weights are random (operator fusion is
//!   weight-agnostic); hyper-parameters (hidden sizes, head counts, FFN
//!   dimensions, normalization and activation kinds) match the published
//!   models.

pub mod extended;
pub mod subgraphs;
pub mod transformer;

pub use extended::{batchnorm_inference, conv2d_im2col, glu, log_softmax_nll};
pub use subgraphs::{
    layernorm, lstm_cell, masked_mha, mha, mha_decode, mlp_stack, rmsnorm, softmax,
};
pub use transformer::{
    albert, all_models, bert, llama2_7b, t5, vit, vit_seq_for_image, ActKind, NormKind,
    TransformerConfig, Workload,
};
