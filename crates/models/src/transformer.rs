//! The five end-to-end Transformer models of the evaluation (§6.2).
//!
//! A model is described as the list of distinct per-layer subprograms
//! with repetition counts; end-to-end inference time is the sum over
//! subprograms of `count × subprogram-time`. This mirrors how the
//! compiler sees real models after program preprocessing: layers are
//! repetitive, and repetitive subprograms compile once (paper §5).

use crate::subgraphs;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, UnaryOp};
use sf_tensor::{DType, Shape};

/// Normalization flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// LayerNorm (BERT/ALBERT/ViT/T5 — T5 actually uses RMSNorm, see
    /// [`t5`]).
    LayerNorm,
    /// RMSNorm (Llama2, T5).
    RmsNorm,
}

/// Feed-forward activation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// GELU (BERT/ALBERT/ViT).
    Gelu,
    /// ReLU (T5).
    Relu,
    /// SwiGLU: gated FFN with SiLU (Llama2).
    SwiGlu,
}

/// Hyper-parameters of one Transformer encoder/decoder stack.
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Model name.
    pub name: &'static str,
    /// Number of layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Normalization flavour.
    pub norm: NormKind,
    /// FFN activation flavour.
    pub act: ActKind,
    /// Fixed sequence length (ViT patch count), if any.
    pub fixed_seq: Option<usize>,
}

/// A subprogram of a model together with how often it executes per
/// forward pass.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The subprogram graph.
    pub graph: Graph,
    /// Executions per forward pass.
    pub count: u64,
}

/// BERT-base (uncased): 12 × 768, 12 heads, FFN 3072, GELU.
pub fn bert() -> TransformerConfig {
    TransformerConfig {
        name: "Bert",
        layers: 12,
        hidden: 768,
        heads: 12,
        head_dim: 64,
        ffn: 3072,
        norm: NormKind::LayerNorm,
        act: ActKind::Gelu,
        fixed_seq: None,
    }
}

/// ALBERT-base-v2: BERT-base dimensions with cross-layer sharing (same
/// compute per layer).
pub fn albert() -> TransformerConfig {
    TransformerConfig {
        name: "Albert",
        ..bert()
    }
}

/// T5-base encoder: 12 × 768, 12 heads, FFN 3072, ReLU, RMS-style norm.
pub fn t5() -> TransformerConfig {
    TransformerConfig {
        name: "T5",
        layers: 12,
        hidden: 768,
        heads: 12,
        head_dim: 64,
        ffn: 3072,
        norm: NormKind::RmsNorm,
        act: ActKind::Relu,
        fixed_seq: None,
    }
}

/// ViT-base/16: 12 × 768, 12 heads, FFN 3072, GELU; 197 tokens at
/// 224×224 (a 224/16 patch grid plus the class token).
pub fn vit() -> TransformerConfig {
    TransformerConfig {
        name: "ViT",
        layers: 12,
        hidden: 768,
        heads: 12,
        head_dim: 64,
        ffn: 3072,
        norm: NormKind::LayerNorm,
        act: ActKind::Gelu,
        fixed_seq: Some(197),
    }
}

/// Llama2-7B: 32 × 4096, 32 heads, FFN 11008, RMSNorm, SwiGLU.
pub fn llama2_7b() -> TransformerConfig {
    TransformerConfig {
        name: "Llama2",
        layers: 32,
        hidden: 4096,
        heads: 32,
        head_dim: 128,
        ffn: 11008,
        norm: NormKind::RmsNorm,
        act: ActKind::SwiGlu,
        fixed_seq: None,
    }
}

/// ViT token count for a square image with 16×16 patches.
pub fn vit_seq_for_image(image: usize) -> usize {
    (image / 16) * (image / 16) + 1
}

impl TransformerConfig {
    /// Effective sequence length (ViT ignores the prompt length).
    pub fn seq(&self, requested: usize) -> usize {
        self.fixed_seq.unwrap_or(requested)
    }

    /// The distinct subprograms of one forward pass, with counts.
    ///
    /// Layers are repetitive, so each subprogram appears once with
    /// `count = layers × per-layer multiplicity`.
    pub fn subprograms(&self, batch: usize, seq: usize) -> Vec<Workload> {
        let seq = self.seq(seq);
        let rows = batch * seq;
        let layers = self.layers as u64;
        let mut out = Vec::new();

        // Attention projections: Q, K, V and the output projection, each
        // `[rows, hidden] × [hidden, hidden]` plus bias.
        out.push(Workload {
            graph: proj(self, "attn_proj", rows, self.hidden, self.hidden, None),
            count: 4 * layers,
        });

        // Attention core: per-head fused region.
        out.push(Workload {
            graph: subgraphs::mha(batch, self.heads, seq, self.head_dim),
            count: layers,
        });

        // Residual add after attention / FFN.
        out.push(Workload {
            graph: residual_add(rows, self.hidden),
            count: 2 * layers,
        });

        // Normalization (pre/post depending on model; 2 per layer).
        let norm_graph = match self.norm {
            NormKind::LayerNorm => subgraphs::layernorm(rows, self.hidden),
            NormKind::RmsNorm => subgraphs::rmsnorm(rows, self.hidden),
        };
        out.push(Workload {
            graph: norm_graph,
            count: 2 * layers,
        });

        // Feed-forward network.
        match self.act {
            ActKind::Gelu | ActKind::Relu => {
                let act = if self.act == ActKind::Gelu {
                    UnaryOp::Gelu
                } else {
                    UnaryOp::Relu
                };
                out.push(Workload {
                    graph: proj(self, "ffn_up", rows, self.hidden, self.ffn, Some(act)),
                    count: layers,
                });
                out.push(Workload {
                    graph: proj(self, "ffn_down", rows, self.ffn, self.hidden, None),
                    count: layers,
                });
            }
            ActKind::SwiGlu => {
                out.push(Workload {
                    graph: swiglu_up(rows, self.hidden, self.ffn),
                    count: layers,
                });
                out.push(Workload {
                    graph: proj(self, "ffn_down", rows, self.ffn, self.hidden, None),
                    count: layers,
                });
            }
        }
        out
    }

    /// Total FLOPs of one forward pass (for sanity checks).
    pub fn forward_flops(&self, batch: usize, seq: usize) -> u64 {
        self.subprograms(batch, seq)
            .iter()
            .map(|w| {
                let mut f = 0u64;
                for op in w.graph.ops() {
                    f += sf_ir::op_cost(&w.graph, op).flops;
                }
                f * w.graph.instances as u64 * w.count
            })
            .sum()
    }
}

/// A projection GEMM with bias and optional activation.
fn proj(
    cfg: &TransformerConfig,
    tag: &str,
    rows: usize,
    in_dim: usize,
    out_dim: usize,
    act: Option<UnaryOp>,
) -> Graph {
    let mut g = Graph::new(
        format!("{}_{tag}_{rows}x{in_dim}x{out_dim}", cfg.name),
        DType::F16,
    );
    let x = g.input("x", Shape::new(vec![rows, in_dim]));
    let w = g.weight("w", Shape::new(vec![in_dim, out_dim]));
    let b = g.weight("b", Shape::new(vec![1, out_dim]));
    let t = g.gemm(x, w, false).expect("proj gemm");
    let mut y = g.binary(BinaryOp::Add, t, b).expect("proj bias");
    if let Some(a) = act {
        y = g.unary(a, y).expect("proj act");
    }
    g.mark_output(y);
    g
}

/// The SwiGLU up-projection: `silu(x·Wg) ⊙ (x·Wu)`.
fn swiglu_up(rows: usize, hidden: usize, ffn: usize) -> Graph {
    let mut g = Graph::new(format!("swiglu_{rows}x{hidden}x{ffn}"), DType::F16);
    let x = g.input("x", Shape::new(vec![rows, hidden]));
    let wg = g.weight("wg", Shape::new(vec![hidden, ffn]));
    let wu = g.weight("wu", Shape::new(vec![hidden, ffn]));
    let gate = g.gemm(x, wg, false).expect("swiglu gate");
    let gate = g.unary(UnaryOp::Silu, gate).expect("swiglu silu");
    let up = g.gemm(x, wu, false).expect("swiglu up");
    let y = g.binary(BinaryOp::Mul, gate, up).expect("swiglu mul");
    g.mark_output(y);
    g
}

/// Residual addition of two `[rows, hidden]` activations.
fn residual_add(rows: usize, hidden: usize) -> Graph {
    let mut g = Graph::new(format!("residual_{rows}x{hidden}"), DType::F16);
    let a = g.input("a", Shape::new(vec![rows, hidden]));
    let b = g.input("b", Shape::new(vec![rows, hidden]));
    let y = g.binary(BinaryOp::Add, a, b).expect("residual add");
    g.mark_output(y);
    g
}

/// All five evaluated models, in the paper's presentation order.
pub fn all_models() -> Vec<TransformerConfig> {
    vec![bert(), albert(), t5(), vit(), llama2_7b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_configs_match_published_sizes() {
        assert_eq!(bert().hidden, 768);
        assert_eq!(bert().layers, 12);
        assert_eq!(llama2_7b().hidden, 4096);
        assert_eq!(llama2_7b().heads, 32);
        assert_eq!(llama2_7b().ffn, 11008);
        assert_eq!(vit().seq(9999), 197);
        assert_eq!(bert().seq(128), 128);
    }

    #[test]
    fn subprograms_cover_a_layer() {
        let w = bert().subprograms(1, 128);
        // proj, mha, residual, norm, ffn_up, ffn_down.
        assert_eq!(w.len(), 6);
        // 4 projections + 1 attention per layer.
        assert_eq!(w[0].count, 48);
        assert_eq!(w[1].count, 12);
        // Attention instances cover batch × heads.
        assert_eq!(w[1].graph.instances, 12);
    }

    #[test]
    fn llama2_uses_swiglu_and_rmsnorm() {
        let w = llama2_7b().subprograms(1, 128);
        assert!(w.iter().any(|x| x.graph.name().contains("swiglu")));
        assert!(w.iter().any(|x| x.graph.name().contains("rmsnorm")));
    }

    #[test]
    fn forward_flops_scale_with_batch_and_model() {
        let small = bert().forward_flops(1, 128);
        let batched = bert().forward_flops(32, 128);
        assert!(batched > 20 * small);
        // Llama2-7B forward ≈ 2 × params × tokens ≈ 1.7 TFLOPs at 128.
        let llama = llama2_7b().forward_flops(1, 128);
        assert!(llama > 10 * small, "llama {llama} vs bert {small}");
    }

    #[test]
    fn vit_seq_formula() {
        assert_eq!(vit_seq_for_image(224), 197);
        assert_eq!(vit_seq_for_image(768), 2305);
    }

    #[test]
    fn workload_graphs_execute() {
        for w in bert().subprograms(1, 32) {
            let b = w.graph.random_bindings(1);
            w.graph.execute(&b).unwrap();
        }
    }
}
