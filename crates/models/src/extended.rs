//! Extension workloads beyond the paper's Fig. 10 suite.
//!
//! These exercise structurally different corners of the compiler:
//!
//! * [`conv2d_im2col`] — 2-D convolution lowered through im2col: a layout
//!   barrier (the im2col gather) followed by a GEMM, exercising program
//!   segmentation + epilogue fusion. Partially-ranged sliding-window
//!   mappings are out of the SMG's scope (paper footnote 1), so the
//!   barrier boundary is exactly where the paper's abstraction stops.
//! * [`batchnorm_inference`] — per-*column* normalization: the reductions
//!   run along dimension 0, so the spatially sliceable dimension is the
//!   feature axis instead of the row axis.
//! * [`glu`] — gated linear unit: two GEMMs combined element-wise, a
//!   CI-only fusion pattern.
//! * [`log_softmax_nll`] — log-softmax plus a label-weighted negative
//!   log-likelihood: three chained reductions over one dimension, the
//!   deepest All-to-One chain in the zoo.

use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};

/// 2-D convolution as im2col + GEMM.
///
/// Input `[batch·out_h·out_w, k·k·c_in]` is the pre-gathered im2col
/// matrix (the gather itself is a layout barrier — fusion cannot cross
/// it); the kernel weights are `[k·k·c_in, c_out]`; a bias and ReLU
/// epilogue follow, then a reshape barrier back to feature-map layout.
pub fn conv2d_im2col(batch: usize, out_hw: usize, k: usize, c_in: usize, c_out: usize) -> Graph {
    let rows = batch * out_hw * out_hw;
    let cols = k * k * c_in;
    let mut g = Graph::new(
        format!("conv2d_b{batch}o{out_hw}k{k}c{c_in}x{c_out}"),
        DType::F16,
    );
    let im2col = g.input("im2col", Shape::new(vec![rows, cols]));
    let w = g.weight("w", Shape::new(vec![cols, c_out]));
    let b = g.weight("b", Shape::new(vec![1, c_out]));
    let y = g.gemm(im2col, w, false).expect("conv gemm");
    let y = g.binary(BinaryOp::Add, y, b).expect("conv bias");
    let y = g.unary(UnaryOp::Relu, y).expect("conv relu");
    // Back to [batch·c_out, out_h·out_w] feature-map layout.
    let fm = g
        .layout_barrier(y, Shape::new(vec![batch * c_out, out_hw * out_hw]))
        .expect("conv reshape");
    g.mark_output(fm);
    g
}

/// Inference-time BatchNorm over `[rows, features]`: statistics reduce
/// along dimension 0 (per feature column).
pub fn batchnorm_inference(rows: usize, features: usize) -> Graph {
    let mut g = Graph::new(format!("batchnorm{rows}x{features}"), DType::F16);
    let x = g.input("x", Shape::new(vec![rows, features]));
    let gamma = g.weight("gamma", Shape::new(vec![1, features]));
    let beta = g.weight("beta", Shape::new(vec![1, features]));
    let mean = g.reduce(ReduceOp::Mean, x, 0).expect("bn mean");
    let c = g.binary(BinaryOp::Sub, x, mean).expect("bn sub");
    let sq = g.unary(UnaryOp::Sqr, c).expect("bn sqr");
    let var = g.reduce(ReduceOp::Mean, sq, 0).expect("bn var");
    let veps = g.scalar(BinaryOp::Add, var, 1e-5).expect("bn eps");
    let std = g.unary(UnaryOp::Sqrt, veps).expect("bn sqrt");
    let norm = g.binary(BinaryOp::Div, c, std).expect("bn div");
    let sc = g.binary(BinaryOp::Mul, norm, gamma).expect("bn mul");
    let y = g.binary(BinaryOp::Add, sc, beta).expect("bn add");
    g.mark_output(y);
    g
}

/// Gated linear unit: `(x·W) ⊙ sigmoid(x·Wg)` — two GEMMs, element-wise
/// gating, no reductions beyond the contractions (a CI-only pattern).
pub fn glu(rows: usize, in_dim: usize, out_dim: usize) -> Graph {
    let mut g = Graph::new(format!("glu{rows}x{in_dim}x{out_dim}"), DType::F16);
    let x = g.input("x", Shape::new(vec![rows, in_dim]));
    let w = g.weight("w", Shape::new(vec![in_dim, out_dim]));
    let wg = g.weight("wg", Shape::new(vec![in_dim, out_dim]));
    let lin = g.gemm(x, w, false).expect("glu lin");
    let gate = g.gemm(x, wg, false).expect("glu gate");
    let gate = g.unary(UnaryOp::Sigmoid, gate).expect("glu sigmoid");
    let y = g.binary(BinaryOp::Mul, lin, gate).expect("glu mul");
    g.mark_output(y);
    g
}

/// Log-softmax plus label-weighted NLL per row:
/// `loss[m] = −Σ_n y[m,n] · log_softmax(x)[m,n]`.
///
/// Three reductions chain along the class dimension: max → sum(exp) →
/// the final weighted sum.
pub fn log_softmax_nll(rows: usize, classes: usize) -> Graph {
    let mut g = Graph::new(format!("nll{rows}x{classes}"), DType::F32);
    let x = g.input("x", Shape::new(vec![rows, classes]));
    let y = g.input("y", Shape::new(vec![rows, classes])); // one-hot-ish.
    let mx = g.reduce(ReduceOp::Max, x, 1).expect("nll max");
    let sh = g.binary(BinaryOp::Sub, x, mx).expect("nll sub");
    let e = g.unary(UnaryOp::Exp, sh).expect("nll exp");
    let z = g.reduce(ReduceOp::Sum, e, 1).expect("nll sum");
    let logz = g.unary(UnaryOp::Log, z).expect("nll log");
    let logp = g.binary(BinaryOp::Sub, sh, logz).expect("nll logp");
    let wl = g.binary(BinaryOp::Mul, y, logp).expect("nll weight");
    let s = g.reduce(ReduceOp::Sum, wl, 1).expect("nll reduce");
    let loss = g.scalar(BinaryOp::Mul, s, -1.0).expect("nll neg");
    g.mark_output(loss);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_has_a_layout_barrier_boundary() {
        let g = conv2d_im2col(2, 8, 3, 16, 32);
        let barriers = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, sf_ir::OpKind::LayoutBarrier))
            .count();
        assert_eq!(barriers, 1);
        let segs = sf_ir::segment(&g).unwrap();
        assert_eq!(segs.len(), 1, "everything before the reshape is one region");
        let b = g.random_bindings(1);
        let out = g.execute(&b).unwrap();
        assert_eq!(out[0].shape().dims(), &[2 * 32, 64]);
        assert!(out[0].data().iter().all(|&v| v >= 0.0), "relu applied");
    }

    #[test]
    fn batchnorm_normalizes_columns() {
        let g = batchnorm_inference(64, 16);
        let mut b = g.random_bindings(2);
        b.insert(
            "gamma".into(),
            sf_tensor::Tensor::full(Shape::new(vec![1, 16]), DType::F16, 1.0),
        );
        b.insert(
            "beta".into(),
            sf_tensor::Tensor::zeros(Shape::new(vec![1, 16]), DType::F16),
        );
        let out = g.execute(&b).unwrap();
        for j in 0..16 {
            let col: Vec<f32> = (0..64).map(|i| out[0].at(&[i, j])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-3, "column {j} mean {mean}");
        }
    }

    #[test]
    fn glu_gates_are_bounded() {
        let g = glu(32, 64, 64);
        let b = g.random_bindings(3);
        let out = g.execute(&b).unwrap();
        assert_eq!(out[0].shape().dims(), &[32, 64]);
    }

    #[test]
    fn nll_of_uniform_distribution_is_log_classes() {
        let (rows, classes) = (4usize, 8usize);
        let g = log_softmax_nll(rows, classes);
        let mut b = g.random_bindings(4);
        // Uniform logits + one-hot labels → loss = ln(classes).
        b.insert(
            "x".into(),
            sf_tensor::Tensor::zeros(Shape::new(vec![rows, classes]), DType::F32),
        );
        let mut onehot = sf_tensor::Tensor::zeros(Shape::new(vec![rows, classes]), DType::F32);
        for i in 0..rows {
            onehot.set(&[i, i % classes], 1.0);
        }
        b.insert("y".into(), onehot);
        let out = g.execute(&b).unwrap();
        for i in 0..rows {
            assert!((out[0].at(&[i, 0]) - (classes as f32).ln()).abs() < 1e-5);
        }
    }
}
