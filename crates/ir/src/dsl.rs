//! The textual graph DSL: parser and printer.
//!
//! Lives next to the IR (rather than in the CLI crate) so every layer —
//! the `sfc` driver, the differential fuzzer's corpus files, and the
//! corpus replay tests — can read and write graphs without depending on
//! the command-line frontend.
//!
//! ```text
//! graph softmax f16
//! input x [1024, 2048]
//! m   = reduce_max x dim=1
//! s   = sub x m
//! e   = exp s
//! z   = reduce_sum e dim=1
//! out = div e z
//! output out
//! ```
//!
//! [`print_graph`] is the inverse of [`parse_graph`]: any graph renders
//! to DSL text that parses back to a structurally identical graph.

use crate::graph::{Graph, OpKind, ValueId, ValueKind};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a graph from DSL source.
///
/// # Examples
///
/// ```
/// let src = "graph relu f32\ninput x [4, 4]\ny = relu x\noutput y\n";
/// let g = sf_ir::dsl::parse_graph(src).unwrap();
/// assert_eq!(g.ops().len(), 1);
/// ```
pub fn parse_graph(src: &str) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    let mut names: HashMap<String, ValueId> = HashMap::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens[0] {
            "graph" => {
                if graph.is_some() {
                    return Err(err(line, "duplicate 'graph' header"));
                }
                let name = tokens.get(1).ok_or(err(line, "graph needs a name"))?;
                let dtype = match tokens.get(2).copied().unwrap_or("f16") {
                    "f16" => DType::F16,
                    "f32" => DType::F32,
                    other => return Err(err(line, format!("unknown dtype '{other}'"))),
                };
                graph = Some(Graph::new(name.to_string(), dtype));
            }
            "instances" => {
                let g = graph.as_mut().ok_or(err(line, "missing 'graph' header"))?;
                g.instances = tokens
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or(err(line, "instances needs a positive integer"))?;
            }
            "input" | "weight" => {
                let g = graph.as_mut().ok_or(err(line, "missing 'graph' header"))?;
                let name = tokens.get(1).ok_or(err(line, "missing tensor name"))?;
                let shape = parse_shape(&tokens[2..], line)?;
                let id = if tokens[0] == "input" {
                    g.input(name.to_string(), shape)
                } else {
                    g.weight(name.to_string(), shape)
                };
                names.insert(name.to_string(), id);
            }
            "output" => {
                let name = tokens.get(1).ok_or(err(line, "missing output name"))?;
                outputs.push((line, name.to_string()));
            }
            _ => {
                // An op definition: `name = op args...`.
                if tokens.len() < 3 || tokens[1] != "=" {
                    return Err(err(line, format!("cannot parse '{text}'")));
                }
                let g = graph.as_mut().ok_or(err(line, "missing 'graph' header"))?;
                let out_name = tokens[0];
                let id = parse_op(g, &names, &tokens[2..], line)?;
                g.rename_value(id, out_name);
                names.insert(out_name.to_string(), id);
            }
        }
    }

    let mut g = graph.ok_or(err(1, "missing 'graph' header"))?;
    if outputs.is_empty() {
        return Err(err(src.lines().count().max(1), "graph declares no outputs"));
    }
    for (line, name) in outputs {
        let id = *names
            .get(&name)
            .ok_or(err(line, format!("unknown output '{name}'")))?;
        g.mark_output(id);
    }
    Ok(g)
}

fn parse_shape(tokens: &[&str], line: usize) -> Result<Shape, ParseError> {
    let joined = tokens.join(" ");
    let inner = joined
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or(err(line, "shape must look like [rows, cols]"))?;
    let dims: Result<Vec<usize>, _> = inner
        .split(',')
        .map(|d| d.trim().parse::<usize>())
        .collect();
    let dims = dims.map_err(|_| err(line, "shape dimensions must be integers"))?;
    if dims.is_empty() {
        return Err(err(line, "shape needs at least one dimension"));
    }
    Ok(Shape::new(dims))
}

fn lookup(
    names: &HashMap<String, ValueId>,
    token: &str,
    line: usize,
) -> Result<ValueId, ParseError> {
    names
        .get(token)
        .copied()
        .ok_or(err(line, format!("unknown value '{token}'")))
}

fn key_value(tokens: &[&str], key: &str, line: usize) -> Result<usize, ParseError> {
    for t in tokens {
        if let Some(v) = t.strip_prefix(&format!("{key}=")) {
            return v
                .parse()
                .map_err(|_| err(line, format!("{key} must be an integer")));
        }
    }
    Err(err(line, format!("missing {key}=N")))
}

fn unary_by_name(name: &str) -> Option<UnaryOp> {
    Some(match name {
        "exp" => UnaryOp::Exp,
        "neg" => UnaryOp::Neg,
        "sqrt" => UnaryOp::Sqrt,
        "sqr" => UnaryOp::Sqr,
        "recip" => UnaryOp::Recip,
        "relu" => UnaryOp::Relu,
        "gelu" => UnaryOp::Gelu,
        "tanh" => UnaryOp::Tanh,
        "sigmoid" => UnaryOp::Sigmoid,
        "silu" => UnaryOp::Silu,
        "log" => UnaryOp::Log,
        "abs" => UnaryOp::Abs,
        "id" => UnaryOp::Identity,
        _ => return None,
    })
}

fn binary_by_name(name: &str) -> Option<BinaryOp> {
    Some(match name {
        "add" => BinaryOp::Add,
        "sub" => BinaryOp::Sub,
        "mul" => BinaryOp::Mul,
        "div" => BinaryOp::Div,
        "max" => BinaryOp::Max,
        "min" => BinaryOp::Min,
        _ => return None,
    })
}

fn parse_op(
    g: &mut Graph,
    names: &HashMap<String, ValueId>,
    tokens: &[&str],
    line: usize,
) -> Result<ValueId, ParseError> {
    let op = tokens[0];
    let ir = |e: crate::graph::GraphError| err(line, e.to_string());
    if let Some(u) = unary_by_name(op) {
        let x = lookup(
            names,
            tokens.get(1).ok_or(err(line, "missing operand"))?,
            line,
        )?;
        return g.unary(u, x).map_err(ir);
    }
    if let Some(b) = binary_by_name(op) {
        let a = lookup(
            names,
            tokens.get(1).ok_or(err(line, "missing operand"))?,
            line,
        )?;
        let c = lookup(
            names,
            tokens.get(2).ok_or(err(line, "missing operand"))?,
            line,
        )?;
        return g.binary(b, a, c).map_err(ir);
    }
    if let Some(base) = op.strip_suffix("_scalar") {
        let b = binary_by_name(base).ok_or(err(line, format!("unknown scalar op '{op}'")))?;
        let x = lookup(
            names,
            tokens.get(1).ok_or(err(line, "missing operand"))?,
            line,
        )?;
        let value: f32 = tokens
            .get(2)
            .and_then(|t| t.parse().ok())
            .ok_or(err(line, "scalar op needs a numeric constant"))?;
        return g.scalar(b, x, value).map_err(ir);
    }
    if let Some(kind) = op.strip_prefix("reduce_") {
        let r = match kind {
            "sum" => ReduceOp::Sum,
            "max" => ReduceOp::Max,
            "mean" => ReduceOp::Mean,
            other => return Err(err(line, format!("unknown reduction '{other}'"))),
        };
        let x = lookup(
            names,
            tokens.get(1).ok_or(err(line, "missing operand"))?,
            line,
        )?;
        let dim = key_value(tokens, "dim", line)?;
        return g.reduce(r, x, dim).map_err(ir);
    }
    match op {
        "gemm" => {
            let a = lookup(
                names,
                tokens.get(1).ok_or(err(line, "missing operand"))?,
                line,
            )?;
            let b = lookup(
                names,
                tokens.get(2).ok_or(err(line, "missing operand"))?,
                line,
            )?;
            let t = tokens.contains(&"transpose_b");
            g.gemm(a, b, t).map_err(ir)
        }
        "broadcast" => {
            let x = lookup(
                names,
                tokens.get(1).ok_or(err(line, "missing operand"))?,
                line,
            )?;
            let dim = key_value(tokens, "dim", line)?;
            let extent = key_value(tokens, "extent", line)?;
            g.broadcast(x, dim, extent).map_err(ir)
        }
        "reshape" => {
            let x = lookup(
                names,
                tokens.get(1).ok_or(err(line, "missing operand"))?,
                line,
            )?;
            let shape = parse_shape(&tokens[2..], line)?;
            g.layout_barrier(x, shape).map_err(ir)
        }
        other => Err(err(line, format!("unknown operator '{other}'"))),
    }
}

/// Prints a graph in DSL form (round-trips through [`parse_graph`]).
pub fn print_graph(g: &Graph) -> String {
    let mut out = String::new();
    let dtype = match g.dtype() {
        DType::F16 => "f16",
        DType::F32 => "f32",
    };
    let _ = writeln!(out, "graph {} {dtype}", sanitize(g.name()));
    if g.instances != 1 {
        let _ = writeln!(out, "instances {}", g.instances);
    }
    for (vi, v) in g.values().iter().enumerate() {
        let kw = match v.kind {
            ValueKind::Input => "input",
            ValueKind::Weight => "weight",
            ValueKind::Intermediate => continue,
        };
        let _ = writeln!(
            out,
            "{kw} {} {}",
            sanitize(&v.name),
            shape_str(g, ValueId(vi))
        );
    }
    for op in g.ops() {
        let name = sanitize(&g.value(op.output).name);
        let a = |i: usize| sanitize(&g.value(op.inputs[i]).name);
        let line = match &op.kind {
            OpKind::Gemm { transpose_b } => {
                let t = if *transpose_b { " transpose_b" } else { "" };
                format!("{name} = gemm {} {}{t}", a(0), a(1))
            }
            OpKind::Unary(u) => format!("{name} = {} {}", u.name(), a(0)),
            OpKind::Binary(b) => format!("{name} = {} {} {}", b.name(), a(0), a(1)),
            OpKind::Scalar { op, value } => {
                format!("{name} = {}_scalar {} {value}", op.name(), a(0))
            }
            OpKind::Reduce { op, dim } => {
                format!("{name} = reduce_{} {} dim={dim}", op.name(), a(0))
            }
            OpKind::Broadcast { dim, extent } => {
                format!("{name} = broadcast {} dim={dim} extent={extent}", a(0))
            }
            OpKind::LayoutBarrier => {
                format!("{name} = reshape {} {}", a(0), shape_str(g, op.output))
            }
        };
        let _ = writeln!(out, "{line}");
    }
    for &o in g.outputs() {
        let _ = writeln!(out, "output {}", sanitize(&g.value(o).name));
    }
    out
}

fn shape_str(g: &Graph, v: ValueId) -> String {
    let dims: Vec<String> = g.shape(v).dims().iter().map(|d| d.to_string()).collect();
    format!("[{}]", dims.join(", "))
}

/// DSL identifiers cannot contain whitespace; auto-generated names are
/// already clean, but user names from other frontends may not be.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == '=' || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOFTMAX: &str = "\
# row softmax
graph softmax f16
input x [64, 256]
m = reduce_max x dim=1
s = sub x m
e = exp s
z = reduce_sum e dim=1
out = div e z
output out
";

    #[test]
    fn parses_softmax() {
        let g = parse_graph(SOFTMAX).unwrap();
        assert_eq!(g.name(), "softmax");
        assert_eq!(g.ops().len(), 5);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.dtype(), DType::F16);
    }

    #[test]
    fn parsed_graph_executes() {
        let g = parse_graph(SOFTMAX).unwrap();
        let bindings = g.random_bindings(1);
        let out = g.execute(&bindings).unwrap();
        let row: f32 = (0..256).map(|j| out[0].at(&[0, j])).sum();
        assert!((row - 1.0).abs() < 1e-4);
    }

    #[test]
    fn parses_gemm_and_attributes() {
        let src = "\
graph attn f32
instances 8
input q [32, 64]
input k [128, 64]
qk = gemm q k transpose_b
sc = mul_scalar qk 0.125
output sc
";
        let g = parse_graph(src).unwrap();
        assert_eq!(g.instances, 8);
        assert_eq!(g.shape(g.outputs()[0]).dims(), &[32, 128]);
    }

    #[test]
    fn parses_broadcast_and_reshape() {
        let src = "\
graph t f32
input x [4, 1]
b = broadcast x dim=1 extent=8
r = reshape b [8, 4]
output r
";
        let g = parse_graph(src).unwrap();
        assert_eq!(g.shape(g.outputs()[0]).dims(), &[8, 4]);
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "graph t f32\ninput x [4, 4]\ny = frobnicate x\noutput y\n";
        let e = parse_graph(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_unknown_operands_and_outputs() {
        let e = parse_graph("graph t f32\ny = relu nope\noutput y\n").unwrap_err();
        assert!(e.message.contains("nope"));
        let e = parse_graph("graph t f32\ninput x [2, 2]\noutput missing\n").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn rejects_missing_header_and_outputs() {
        assert!(parse_graph("input x [2, 2]\n").is_err());
        assert!(parse_graph("graph t f32\ninput x [2, 2]\n").is_err());
    }

    #[test]
    fn rejects_bad_shapes_and_dtypes() {
        assert!(parse_graph("graph t f99\n").is_err());
        assert!(parse_graph("graph t f32\ninput x 4x4\noutput x\n").is_err());
        assert!(parse_graph("graph t f32\ninput x [a, b]\noutput x\n").is_err());
    }

    #[test]
    fn shape_errors_propagate_from_ir() {
        let src = "\
graph t f32
input a [4, 8]
input b [3, 8]
c = add a b
output c
";
        let e = parse_graph(src).unwrap_err();
        assert_eq!(e.line, 4);
    }

    fn mha() -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        g.instances = 4;
        let q = g.input("q", Shape::new(vec![32, 64]));
        let k = g.input("k", Shape::new(vec![128, 64]));
        let v = g.input("v", Shape::new(vec![128, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        let sc = g.scalar(BinaryOp::Mul, qk, 0.125).unwrap();
        let m = g.reduce(ReduceOp::Max, sc, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, sc, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = mha();
        let text = print_graph(&g);
        let g2 = parse_graph(&text).expect("round trip parses");
        assert_eq!(g2.ops().len(), g.ops().len());
        assert_eq!(g2.instances, g.instances);
        assert_eq!(g2.outputs().len(), 1);
        for (a, b) in g.ops().iter().zip(g2.ops()) {
            assert_eq!(a.kind.name(), b.kind.name());
        }
    }

    #[test]
    fn round_trip_preserves_numerics() {
        let g = mha();
        let g2 = parse_graph(&print_graph(&g)).unwrap();
        let bindings = g.random_bindings(5);
        let a = g.execute(&bindings).unwrap();
        let b = g2.execute(&bindings).unwrap();
        assert!(a[0].allclose(&b[0], 1e-6));
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize("a name=with #stuff"), "a_name_with__stuff");
    }

    #[test]
    fn prints_reshape_and_broadcast() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 1]));
        let b = g.broadcast(x, 1, 8).unwrap();
        let r = g.layout_barrier(b, Shape::new(vec![8, 4])).unwrap();
        g.mark_output(r);
        let text = print_graph(&g);
        assert!(text.contains("broadcast x dim=1 extent=8"));
        assert!(text.contains("reshape"));
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g2.shape(g2.outputs()[0]).dims(), &[8, 4]);
    }
}
