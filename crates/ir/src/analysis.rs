//! Operator cost accounting and pattern classification.
//!
//! Used by the GPU model (FLOPs / bytes per op), by the baseline engines
//! (compute- vs memory-intensive fusion rules, as in AStitch/Welder), and
//! by the Table 6 fusion-pattern census (distinct pattern signatures).

use crate::graph::{Graph, OpKind, OpNode, ValueKind};

/// Compute- vs memory-intensive classification (paper §6.6 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Compute-intensive: GEMM.
    ComputeIntensive,
    /// Memory-intensive: element-wise, reductions, broadcasts.
    MemoryIntensive,
}

/// Classifies one operator.
pub fn op_class(kind: &OpKind) -> OpClass {
    match kind {
        OpKind::Gemm { .. } => OpClass::ComputeIntensive,
        _ => OpClass::MemoryIntensive,
    }
}

/// FLOPs and unfused global-memory traffic of one operator node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Floating-point operations (multiply-add counted as 2).
    pub flops: u64,
    /// Bytes read from global memory when executed as a standalone kernel.
    pub bytes_read: u64,
    /// Bytes written to global memory when executed standalone.
    pub bytes_written: u64,
}

impl OpCost {
    /// Total global traffic.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Costs of one operator in `graph`, for a single instance.
pub fn op_cost(graph: &Graph, op: &OpNode) -> OpCost {
    let esz = graph.dtype().size_bytes() as u64;
    let out_vol = graph.shape(op.output).volume() as u64;
    let in_vol: u64 = op
        .inputs
        .iter()
        .map(|&v| graph.shape(v).volume() as u64)
        .sum();
    let flops = match &op.kind {
        OpKind::Gemm { .. } => {
            let a = graph.shape(op.inputs[0]);
            let (m, k) = (a.dims()[0] as u64, a.dims()[1] as u64);
            let n = graph.shape(op.output).dims()[1] as u64;
            2 * m * n * k
        }
        OpKind::Reduce { .. } => {
            // One combine per input element.
            graph.shape(op.inputs[0]).volume() as u64
        }
        OpKind::LayoutBarrier => 0,
        // One scalar op per output element (broadcast included: a move).
        _ => out_vol,
    };
    OpCost {
        flops,
        bytes_read: in_vol * esz,
        bytes_written: out_vol * esz,
    }
}

/// Aggregate cost of a whole graph, for a single instance.
pub fn graph_cost(graph: &Graph) -> OpCost {
    let mut total = OpCost {
        flops: 0,
        bytes_read: 0,
        bytes_written: 0,
    };
    for op in graph.ops() {
        let c = op_cost(graph, op);
        total.flops += c.flops;
        total.bytes_read += c.bytes_read;
        total.bytes_written += c.bytes_written;
    }
    total
}

/// Counts of non-element-wise operators by class in a graph.
pub fn class_census(graph: &Graph) -> (usize, usize) {
    let mut ci = 0;
    let mut mi = 0;
    for op in graph.ops() {
        if op.kind.is_elementwise() {
            continue;
        }
        match op_class(&op.kind) {
            OpClass::ComputeIntensive => ci += 1,
            OpClass::MemoryIntensive => mi += 1,
        }
    }
    (ci, mi)
}

/// A canonical signature of a fusion pattern.
///
/// Two subgraphs have the same signature when they consist of the same
/// multiset of non-element-wise operators wired in the same topology
/// (paper §6.6: "counted by distinct non-element-wise operators and
/// distinct subgraph topologies"). Shapes are intentionally excluded so
/// the same structure at different sizes counts once.
pub fn pattern_signature(graph: &Graph) -> String {
    let mut parts: Vec<String> = Vec::new();
    for op in graph.ops() {
        if op.kind.is_elementwise() {
            continue;
        }
        // Encode each non-element-wise op plus the *kinds* of its operand
        // producers, capturing local topology.
        let operands: Vec<String> = op
            .inputs
            .iter()
            .map(|&v| match graph.producer(v) {
                Some(p) => p.kind.name(),
                None => match graph.value(v).kind {
                    ValueKind::Input => "in".to_string(),
                    ValueKind::Weight => "w".to_string(),
                    ValueKind::Intermediate => "tmp".to_string(),
                },
            })
            .collect();
        parts.push(format!("{}({})", op.kind.name(), operands.join(",")));
    }
    parts.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn gemm_graph(m: usize, n: usize, k: usize) -> Graph {
        let mut g = Graph::new("gemm", DType::F16);
        let a = g.input("a", Shape::new(vec![m, k]));
        let b = g.weight("b", Shape::new(vec![k, n]));
        let c = g.gemm(a, b, false).unwrap();
        g.mark_output(c);
        g
    }

    #[test]
    fn gemm_flops_and_bytes() {
        let g = gemm_graph(64, 32, 128);
        let c = op_cost(&g, &g.ops()[0]);
        assert_eq!(c.flops, 2 * 64 * 32 * 128);
        // f16: (64*128 + 128*32) * 2 bytes read, 64*32*2 written.
        assert_eq!(c.bytes_read, (64 * 128 + 128 * 32) * 2);
        assert_eq!(c.bytes_written, 64 * 32 * 2);
    }

    #[test]
    fn classification() {
        assert_eq!(
            op_class(&OpKind::Gemm { transpose_b: false }),
            OpClass::ComputeIntensive
        );
        assert_eq!(
            op_class(&OpKind::Reduce {
                op: ReduceOp::Sum,
                dim: 0
            }),
            OpClass::MemoryIntensive
        );
        assert_eq!(
            op_class(&OpKind::Unary(UnaryOp::Exp)),
            OpClass::MemoryIntensive
        );
    }

    #[test]
    fn census_skips_elementwise() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let w = g.weight("w", Shape::new(vec![8, 8]));
        let h = g.gemm(x, w, false).unwrap();
        let r = g.unary(UnaryOp::Relu, h).unwrap();
        let s = g.reduce(ReduceOp::Max, r, 1).unwrap();
        g.mark_output(s);
        let (ci, mi) = class_census(&g);
        assert_eq!(ci, 1);
        assert_eq!(mi, 1); // relu is element-wise, only the reduce counts.
    }

    #[test]
    fn signatures_distinguish_topology_not_shape() {
        let a = gemm_graph(64, 32, 128);
        let b = gemm_graph(256, 256, 256);
        assert_eq!(pattern_signature(&a), pattern_signature(&b));

        // Different topology: gemm followed by reduction.
        let mut c = gemm_graph(64, 32, 128);
        let out = c.ops()[0].output;
        let r = c.reduce(ReduceOp::Sum, out, 1).unwrap();
        c.mark_output(r);
        assert_ne!(pattern_signature(&a), pattern_signature(&c));
    }

    #[test]
    fn binary_with_broadcast_counts_output_volume() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        g.mark_output(s);
        let c = op_cost(&g, &g.ops()[1]);
        assert_eq!(c.flops, 32);
        assert_eq!(c.bytes_written, 32 * 4);
    }

    #[test]
    fn graph_cost_sums_ops() {
        let g = gemm_graph(8, 8, 8);
        let total = graph_cost(&g);
        let single = op_cost(&g, &g.ops()[0]);
        assert_eq!(total.flops, single.flops);
        assert_eq!(total.bytes_total(), single.bytes_total());
    }
}
