//! Program segmentation (paper §5, program-preprocessing).
//!
//! SpaceFusion "segments the tensor program defined by a deep learning
//! model into smaller subprograms, primarily based on model layers and
//! unavoidable shape or layout transformations". Here, a [`Graph`] is
//! split at every [`OpKind::LayoutBarrier`]; each resulting segment is a
//! standalone graph whose cut values become inputs/outputs. Repetitive
//! segments are deduplicated by the caller via
//! [`crate::analysis::pattern_signature`] plus the shape key returned by
//! [`shape_key`].

use crate::graph::{Graph, GraphError, OpKind, ValueId, ValueKind};
use std::collections::HashMap;

/// Splits a graph into subprograms at layout barriers.
///
/// Each segment preserves operator order. Values crossing a segment
/// boundary become inputs of the later segment and outputs of the earlier
/// one. A graph without barriers yields a single segment equivalent to the
/// input.
pub fn segment(graph: &Graph) -> Result<Vec<Graph>, GraphError> {
    // Group op indices into runs separated by layout barriers.
    let mut runs: Vec<Vec<usize>> = vec![Vec::new()];
    for (i, op) in graph.ops().iter().enumerate() {
        if matches!(op.kind, OpKind::LayoutBarrier) {
            if !runs.last().expect("non-empty").is_empty() {
                runs.push(Vec::new());
            }
            // The barrier itself belongs to no segment: its effect is
            // captured by re-shaping the cut value.
            continue;
        }
        runs.last_mut().expect("non-empty").push(i);
    }
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Ok(Vec::new());
    }

    // Barrier rewiring: uses of a barrier output read the barrier input,
    // re-shaped. Track the mapping old-output -> (source value, new shape).
    let mut barrier_src: HashMap<ValueId, ValueId> = HashMap::new();
    for op in graph.ops() {
        if matches!(op.kind, OpKind::LayoutBarrier) {
            let mut src = op.inputs[0];
            // Collapse chained barriers.
            while let Some(&s) = barrier_src.get(&src) {
                src = s;
            }
            barrier_src.insert(op.output, src);
        }
    }

    let mut segments = Vec::with_capacity(runs.len());
    for (seg_idx, run) in runs.iter().enumerate() {
        let mut sub = Graph::new(format!("{}#{}", graph.name(), seg_idx), graph.dtype());
        sub.instances = graph.instances;
        let mut map: HashMap<ValueId, ValueId> = HashMap::new();
        let produced: Vec<ValueId> = run.iter().map(|&i| graph.ops()[i].output).collect();

        // Import an operand into the segment, creating an input if it is
        // produced outside the run.
        for &i in run {
            let op = &graph.ops()[i];
            let mut mapped_inputs = Vec::with_capacity(op.inputs.len());
            for &raw in &op.inputs {
                // Resolve through layout barriers, but keep the *barrier
                // output's* shape (the shape this segment observes).
                let observed_shape = graph.shape(raw).clone();
                let origin = *barrier_src.get(&raw).unwrap_or(&raw);
                let key = raw;
                let id = if let Some(&m) = map.get(&key) {
                    m
                } else if produced.contains(&origin) && !barrier_src.contains_key(&raw) {
                    // Produced earlier in this same run; map must exist.
                    *map.get(&origin).ok_or(GraphError::UnknownValue(origin))?
                } else {
                    let info = graph.value(origin);
                    let name = info.name.clone();
                    let new = match info.kind {
                        ValueKind::Weight => sub.weight(name, observed_shape),
                        _ => sub.input(name, observed_shape),
                    };
                    map.insert(key, new);
                    new
                };
                mapped_inputs.push(id);
            }
            let new_out = replay_op(&mut sub, &op.kind, &mapped_inputs)?;
            // Keep the original value name: executors bind tensors by
            // name, and post-barrier segments replay at shifted op
            // indices, so auto-generated names would drift.
            sub.rename_value(new_out, graph.value(op.output).name.clone());
            map.insert(op.output, new_out);
        }

        // Outputs: values produced in this run that are consumed outside it
        // (possibly via a barrier) or are graph outputs.
        for &out in &produced {
            let consumed_outside = graph
                .consumers(out)
                .iter()
                .any(|&cid| !run.contains(&cid.0))
                || graph
                    .ops()
                    .iter()
                    .any(|o| matches!(o.kind, OpKind::LayoutBarrier) && o.inputs[0] == out);
            if consumed_outside || graph.outputs().contains(&out) {
                let id = *map.get(&out).ok_or(GraphError::UnknownValue(out))?;
                sub.mark_output(id);
            }
        }
        segments.push(sub);
    }
    Ok(segments)
}

fn replay_op(g: &mut Graph, kind: &OpKind, inputs: &[ValueId]) -> Result<ValueId, GraphError> {
    match kind {
        OpKind::Gemm { transpose_b } => g.gemm(inputs[0], inputs[1], *transpose_b),
        OpKind::Unary(u) => g.unary(*u, inputs[0]),
        OpKind::Binary(b) => g.binary(*b, inputs[0], inputs[1]),
        OpKind::Scalar { op, value } => g.scalar(*op, inputs[0], *value),
        OpKind::Reduce { op, dim } => g.reduce(*op, inputs[0], *dim),
        OpKind::Broadcast { dim, extent } => g.broadcast(inputs[0], *dim, *extent),
        OpKind::LayoutBarrier => unreachable!("barriers are removed before replay"),
    }
}

/// A shape-sensitive key for segment deduplication.
///
/// Two segments with equal [`crate::analysis::pattern_signature`] *and*
/// equal `shape_key` compile to identical kernels, so SpaceFusion compiles
/// them once (paper: "Most of these subprograms are repetitive.
/// SpaceFusion compiles the repetitive ones only once.").
pub fn shape_key(graph: &Graph) -> String {
    use std::fmt::Write;
    let mut key = String::new();
    for op in graph.ops() {
        let _ = write!(key, "{}:", op.kind.name());
        for &i in &op.inputs {
            let _ = write!(key, "{},", graph.shape(i));
        }
        let _ = write!(key, "->{};", graph.shape(op.output));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    /// Two MLP-ish stages separated by a reshape barrier.
    fn barrier_graph() -> Graph {
        let mut g = Graph::new("two_stage", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let w1 = g.weight("w1", Shape::new(vec![8, 8]));
        let h = g.gemm(x, w1, false).unwrap();
        let h = g.unary(UnaryOp::Relu, h).unwrap();
        let r = g.layout_barrier(h, Shape::new(vec![8, 4])).unwrap();
        let w2 = g.weight("w2", Shape::new(vec![4, 4]));
        let y = g.gemm(r, w2, false).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn splits_at_barrier() {
        let g = barrier_graph();
        let segs = segment(&g).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ops().len(), 2);
        assert_eq!(segs[1].ops().len(), 1);
        // The second segment sees the post-barrier shape.
        let in_shape = segs[1]
            .values()
            .iter()
            .find(|v| matches!(v.kind, ValueKind::Input))
            .map(|v| v.shape.clone())
            .unwrap();
        assert_eq!(in_shape.dims(), &[8, 4]);
    }

    #[test]
    fn segments_execute_equivalently() {
        let g = barrier_graph();
        let segs = segment(&g).unwrap();
        let bindings = g.random_bindings(5);
        let full = g.execute(&bindings).unwrap();

        // Chain the segments by hand.
        let out0 = segs[0].execute(&bindings).unwrap();
        let mut b1 = bindings.clone();
        let seg1_input = segs[1]
            .values()
            .iter()
            .find(|v| matches!(v.kind, ValueKind::Input))
            .unwrap();
        b1.insert(
            seg1_input.name.clone(),
            out0[0].reshape(seg1_input.shape.clone()).unwrap(),
        );
        let out1 = segs[1].execute(&b1).unwrap();
        assert!(out1[0].allclose(&full[0], 1e-5));
    }

    #[test]
    fn no_barrier_yields_one_segment() {
        let mut g = Graph::new("plain", DType::F32);
        let x = g.input("x", Shape::new(vec![2, 4]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        g.mark_output(s);
        let segs = segment(&g).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ops().len(), 2);
    }

    #[test]
    fn shape_keys_match_for_identical_segments() {
        let g1 = barrier_graph();
        let g2 = barrier_graph();
        let s1 = segment(&g1).unwrap();
        let s2 = segment(&g2).unwrap();
        assert_eq!(shape_key(&s1[0]), shape_key(&s2[0]));
        assert_ne!(shape_key(&s1[0]), shape_key(&s1[1]));
    }

    #[test]
    fn empty_graph_has_no_segments() {
        let g = Graph::new("empty", DType::F32);
        assert!(segment(&g).unwrap().is_empty());
    }
}
