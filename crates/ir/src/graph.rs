//! The operator dataflow graph and its builder API.

use sf_tensor::ops::{self, BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape, Tensor};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a tensor value in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub usize);

/// Identifier of an operator node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Role of a value in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Activation input of the (sub)program, resident in global memory.
    Input,
    /// Model weight, resident in global memory.
    Weight,
    /// Intermediate value produced and consumed inside the program.
    Intermediate,
}

/// Metadata of a tensor value.
#[derive(Debug, Clone)]
pub struct ValueInfo {
    /// Human-readable name (used in dumps and error messages).
    pub name: String,
    /// Static shape.
    pub shape: Shape,
    /// Storage precision.
    pub dtype: DType,
    /// Role of the value.
    pub kind: ValueKind,
}

/// Primitive operator kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `C[M,N] = A[M,K] · B` where `B` is `[N,K]` if `transpose_b`, else
    /// `[K,N]`. The canonical non-element-wise compute-intensive operator.
    Gemm {
        /// Whether the right operand is stored `[N,K]` (row-major keys).
        transpose_b: bool,
    },
    /// Element-wise unary operator.
    Unary(UnaryOp),
    /// Element-wise binary operator; the second operand may broadcast.
    Binary(BinaryOp),
    /// `x op scalar` element-wise.
    Scalar {
        /// Binary operator applied against the constant.
        op: BinaryOp,
        /// The constant.
        value: f32,
    },
    /// Reduction along `dim`, keeping the dimension with extent 1.
    Reduce {
        /// Aggregation kind.
        op: ReduceOp,
        /// Reduced dimension.
        dim: usize,
    },
    /// Explicit broadcast of a unit dimension to a larger extent.
    Broadcast {
        /// Broadcast dimension (must have extent 1 on the input).
        dim: usize,
        /// Target extent.
        extent: usize,
    },
    /// Layout barrier (reshape/transpose). Fusion never crosses these;
    /// [`crate::segment()`] splits programs here (paper §5,
    /// program-preprocessing).
    LayoutBarrier,
}

impl OpKind {
    /// Whether this operator is element-wise (One-to-One only).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            OpKind::Unary(_) | OpKind::Scalar { .. } | OpKind::LayoutBarrier
        )
    }

    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            OpKind::Gemm { .. } => "gemm".into(),
            OpKind::Unary(u) => u.name().into(),
            OpKind::Binary(b) => b.name().into(),
            OpKind::Scalar { op, .. } => format!("{}_scalar", op.name()),
            OpKind::Reduce { op, dim } => format!("reduce_{}(d{dim})", op.name()),
            OpKind::Broadcast { dim, .. } => format!("broadcast(d{dim})"),
            OpKind::LayoutBarrier => "layout_barrier".into(),
        }
    }
}

/// An operator node: kind, operands, and the produced value.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// What the operator computes.
    pub kind: OpKind,
    /// Operand values, in order.
    pub inputs: Vec<ValueId>,
    /// Produced value.
    pub output: ValueId,
}

/// Errors produced while building or executing a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A referenced value does not exist.
    UnknownValue(ValueId),
    /// Operand shapes are incompatible for the operator.
    ShapeMismatch(String),
    /// Execution was missing a binding for an input value.
    MissingBinding(String),
    /// Underlying tensor-level failure.
    Tensor(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownValue(v) => write!(f, "unknown value id {}", v.0),
            GraphError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            GraphError::MissingBinding(n) => write!(f, "missing binding for input '{n}'"),
            GraphError::Tensor(m) => write!(f, "tensor error: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<sf_tensor::TensorError> for GraphError {
    fn from(e: sf_tensor::TensorError) -> Self {
        GraphError::Tensor(e.to_string())
    }
}

/// An operator dataflow graph over statically shaped tensor values.
///
/// Operators are stored in topological order (the builder only references
/// already-created values), which downstream passes rely on.
///
/// # Examples
///
/// ```
/// use sf_ir::Graph;
/// use sf_tensor::{DType, Shape};
/// use sf_tensor::ops::{BinaryOp, UnaryOp};
///
/// let mut g = Graph::new("mlp_layer", DType::F16);
/// let x = g.input("x", Shape::new(vec![64, 256]));
/// let w = g.weight("w", Shape::new(vec![256, 256]));
/// let h = g.gemm(x, w, true).unwrap();
/// let y = g.unary(UnaryOp::Relu, h).unwrap();
/// g.mark_output(y);
/// assert_eq!(g.ops().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    dtype: DType,
    values: Vec<ValueInfo>,
    ops: Vec<OpNode>,
    outputs: Vec<ValueId>,
    /// Dependency-free leading instances (batch × heads).
    pub instances: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Graph {
            name: name.into(),
            dtype,
            values: Vec::new(),
            ops: Vec::new(),
            outputs: Vec::new(),
            instances: 1,
        }
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element precision of all values.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// All values.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// All operators in topological order.
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Metadata of one value.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.0]
    }

    /// Shape of one value.
    pub fn shape(&self, id: ValueId) -> &Shape {
        &self.values[id.0].shape
    }

    /// Adds an activation input.
    pub fn input(&mut self, name: impl Into<String>, shape: Shape) -> ValueId {
        self.add_value(name.into(), shape, ValueKind::Input)
    }

    /// Adds a weight.
    pub fn weight(&mut self, name: impl Into<String>, shape: Shape) -> ValueId {
        self.add_value(name.into(), shape, ValueKind::Weight)
    }

    /// Marks a value as a program output.
    pub fn mark_output(&mut self, id: ValueId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    fn add_value(&mut self, name: String, shape: Shape, kind: ValueKind) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(ValueInfo {
            name,
            shape,
            dtype: self.dtype,
            kind,
        });
        id
    }

    fn check(&self, id: ValueId) -> Result<(), GraphError> {
        if id.0 >= self.values.len() {
            return Err(GraphError::UnknownValue(id));
        }
        Ok(())
    }

    fn push_op(&mut self, kind: OpKind, inputs: Vec<ValueId>, out_shape: Shape) -> ValueId {
        let name = format!("{}_{}", kind.name(), self.ops.len());
        let out = self.add_value(name, out_shape, ValueKind::Intermediate);
        self.ops.push(OpNode {
            kind,
            inputs,
            output: out,
        });
        out
    }

    /// Adds a GEMM node. See [`OpKind::Gemm`] for the layout convention.
    pub fn gemm(
        &mut self,
        a: ValueId,
        b: ValueId,
        transpose_b: bool,
    ) -> Result<ValueId, GraphError> {
        self.check(a)?;
        self.check(b)?;
        let (sa, sb) = (self.shape(a).clone(), self.shape(b).clone());
        if sa.rank() != 2 || sb.rank() != 2 {
            return Err(GraphError::ShapeMismatch(format!(
                "gemm requires rank-2 operands, got {sa} and {sb}"
            )));
        }
        let (m, k) = (sa.dims()[0], sa.dims()[1]);
        let (n, bk) = if transpose_b {
            (sb.dims()[0], sb.dims()[1])
        } else {
            (sb.dims()[1], sb.dims()[0])
        };
        if k != bk {
            return Err(GraphError::ShapeMismatch(format!(
                "gemm inner dims differ: {sa} · {sb} (transpose_b={transpose_b})"
            )));
        }
        Ok(self.push_op(
            OpKind::Gemm { transpose_b },
            vec![a, b],
            Shape::new(vec![m, n]),
        ))
    }

    /// Adds an element-wise unary node.
    pub fn unary(&mut self, op: UnaryOp, x: ValueId) -> Result<ValueId, GraphError> {
        self.check(x)?;
        let shape = self.shape(x).clone();
        Ok(self.push_op(OpKind::Unary(op), vec![x], shape))
    }

    /// Adds an element-wise binary node (second operand may broadcast).
    pub fn binary(&mut self, op: BinaryOp, a: ValueId, b: ValueId) -> Result<ValueId, GraphError> {
        self.check(a)?;
        self.check(b)?;
        let out = self
            .shape(a)
            .broadcast_with(self.shape(b))
            .map_err(|e| GraphError::ShapeMismatch(e.to_string()))?;
        Ok(self.push_op(OpKind::Binary(op), vec![a, b], out))
    }

    /// Adds an `x op constant` node.
    pub fn scalar(&mut self, op: BinaryOp, x: ValueId, value: f32) -> Result<ValueId, GraphError> {
        self.check(x)?;
        let shape = self.shape(x).clone();
        Ok(self.push_op(OpKind::Scalar { op, value }, vec![x], shape))
    }

    /// Adds a reduction along `dim` (kept with extent 1).
    pub fn reduce(&mut self, op: ReduceOp, x: ValueId, dim: usize) -> Result<ValueId, GraphError> {
        self.check(x)?;
        let shape = self.shape(x).clone();
        if dim >= shape.rank() {
            return Err(GraphError::ShapeMismatch(format!(
                "reduce dim {dim} out of range for {shape}"
            )));
        }
        let out = shape.with_dim(dim, 1)?;
        Ok(self.push_op(OpKind::Reduce { op, dim }, vec![x], out))
    }

    /// Adds an explicit broadcast of a unit dimension.
    pub fn broadcast(
        &mut self,
        x: ValueId,
        dim: usize,
        extent: usize,
    ) -> Result<ValueId, GraphError> {
        self.check(x)?;
        let shape = self.shape(x).clone();
        if dim >= shape.rank() || shape.dims()[dim] != 1 {
            return Err(GraphError::ShapeMismatch(format!(
                "broadcast requires unit dim {dim} on {shape}"
            )));
        }
        let out = shape.with_dim(dim, extent)?;
        Ok(self.push_op(OpKind::Broadcast { dim, extent }, vec![x], out))
    }

    /// Adds a layout barrier (reshape/transpose boundary).
    pub fn layout_barrier(&mut self, x: ValueId, new_shape: Shape) -> Result<ValueId, GraphError> {
        self.check(x)?;
        if new_shape.volume() != self.shape(x).volume() {
            return Err(GraphError::ShapeMismatch(format!(
                "layout barrier changes volume: {} -> {}",
                self.shape(x),
                new_shape
            )));
        }
        Ok(self.push_op(OpKind::LayoutBarrier, vec![x], new_shape))
    }

    /// Renames a value (used by graph splitting to keep the names of cut
    /// values stable across kernels).
    pub fn rename_value(&mut self, id: ValueId, name: impl Into<String>) {
        self.values[id.0].name = name.into();
    }

    /// Producer op of a value, if any (inputs/weights have none).
    pub fn producer(&self, id: ValueId) -> Option<&OpNode> {
        self.ops.iter().find(|op| op.output == id)
    }

    /// Producer op *identity* of a value, if any — the [`OpId`] form of
    /// [`producer`](Graph::producer), for diagnostics that must reference
    /// nodes by stable id rather than by borrow.
    pub fn producer_id(&self, id: ValueId) -> Option<OpId> {
        self.ops.iter().position(|op| op.output == id).map(OpId)
    }

    /// The op node behind an [`OpId`].
    pub fn op(&self, id: OpId) -> &OpNode {
        &self.ops[id.0]
    }

    /// Display name of a value — `v#` ids are meaningless in user-facing
    /// diagnostics, names are what the DSL/report shows.
    pub fn value_name(&self, id: ValueId) -> &str {
        &self.values[id.0].name
    }

    /// Ops that consume a value.
    pub fn consumers(&self, id: ValueId) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.inputs.contains(&id))
            .map(|(i, _)| OpId(i))
            .collect()
    }

    /// Executes the graph on the reference CPU operators.
    ///
    /// `bindings` maps input/weight names to tensors; intermediates are
    /// computed in topological order. Returns the tensors of the declared
    /// outputs, in declaration order.
    pub fn execute(&self, bindings: &HashMap<String, Tensor>) -> Result<Vec<Tensor>, GraphError> {
        let mut env: HashMap<ValueId, Tensor> = HashMap::new();
        for (i, v) in self.values.iter().enumerate() {
            if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
                let t = bindings
                    .get(&v.name)
                    .ok_or_else(|| GraphError::MissingBinding(v.name.clone()))?;
                if t.shape() != &v.shape {
                    return Err(GraphError::ShapeMismatch(format!(
                        "binding '{}' has shape {}, expected {}",
                        v.name,
                        t.shape(),
                        v.shape
                    )));
                }
                env.insert(ValueId(i), t.clone());
            }
        }
        for op in &self.ops {
            let get = |id: &ValueId| env.get(id).cloned().ok_or(GraphError::UnknownValue(*id));
            let out = match &op.kind {
                OpKind::Gemm { transpose_b } => {
                    ops::matmul(&get(&op.inputs[0])?, &get(&op.inputs[1])?, *transpose_b)?
                }
                OpKind::Unary(u) => ops::unary(*u, &get(&op.inputs[0])?),
                OpKind::Binary(b) => ops::binary(*b, &get(&op.inputs[0])?, &get(&op.inputs[1])?)?,
                OpKind::Scalar { op: b, value } => {
                    ops::binary_scalar(*b, &get(&op.inputs[0])?, *value)
                }
                OpKind::Reduce { op: r, dim } => ops::reduce(*r, &get(&op.inputs[0])?, *dim)?,
                OpKind::Broadcast { dim, extent } => {
                    ops::broadcast_to(&get(&op.inputs[0])?, *dim, *extent)?
                }
                OpKind::LayoutBarrier => {
                    get(&op.inputs[0])?.reshape(self.shape(op.output).clone())?
                }
            };
            env.insert(op.output, out);
        }
        self.outputs
            .iter()
            .map(|id| env.get(id).cloned().ok_or(GraphError::UnknownValue(*id)))
            .collect()
    }

    /// Names of all input and weight values, in creation order.
    pub fn binding_names(&self) -> Vec<String> {
        self.values
            .iter()
            .filter(|v| matches!(v.kind, ValueKind::Input | ValueKind::Weight))
            .map(|v| v.name.clone())
            .collect()
    }

    /// Structural validity check: every op references existing values
    /// created *before* its output (topological order), stored shapes
    /// match what the builder would re-infer, binding names are unique,
    /// and at least one output is marked on an existing value.
    ///
    /// The builder API cannot produce an invalid graph, but generated or
    /// deserialized graphs should be checked before compilation — the
    /// fuzzer runs this on every candidate so generator bugs are caught
    /// as `validate` failures instead of surfacing as compiler ones.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut names: Vec<&str> = Vec::new();
        for v in &self.values {
            if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
                if names.contains(&v.name.as_str()) {
                    return Err(GraphError::ShapeMismatch(format!(
                        "duplicate binding name '{}'",
                        v.name
                    )));
                }
                names.push(&v.name);
            }
        }
        for op in &self.ops {
            self.check(op.output)?;
            if self.values[op.output.0].kind != ValueKind::Intermediate {
                return Err(GraphError::ShapeMismatch(format!(
                    "op '{}' writes a non-intermediate value",
                    op.kind.name()
                )));
            }
            for input in &op.inputs {
                self.check(*input)?;
                if input.0 >= op.output.0 {
                    return Err(GraphError::ShapeMismatch(format!(
                        "op '{}' reads value {} created after its output {}",
                        op.kind.name(),
                        input.0,
                        op.output.0
                    )));
                }
            }
            let inferred = self.infer_shape(op)?;
            if &inferred != self.shape(op.output) {
                return Err(GraphError::ShapeMismatch(format!(
                    "op '{}' stores shape {}, re-inference gives {}",
                    op.kind.name(),
                    self.shape(op.output),
                    inferred
                )));
            }
        }
        if self.outputs.is_empty() {
            return Err(GraphError::ShapeMismatch("no outputs marked".into()));
        }
        for out in &self.outputs {
            self.check(*out)?;
        }
        Ok(())
    }

    fn infer_shape(&self, op: &OpNode) -> Result<Shape, GraphError> {
        let shape = |i: usize| self.shape(op.inputs[i]);
        Ok(match &op.kind {
            OpKind::Gemm { transpose_b } => {
                let (sa, sb) = (shape(0), shape(1));
                if sa.rank() != 2 || sb.rank() != 2 {
                    return Err(GraphError::ShapeMismatch(format!(
                        "gemm requires rank-2 operands, got {sa} and {sb}"
                    )));
                }
                let n = if *transpose_b {
                    sb.dims()[0]
                } else {
                    sb.dims()[1]
                };
                let bk = if *transpose_b {
                    sb.dims()[1]
                } else {
                    sb.dims()[0]
                };
                if sa.dims()[1] != bk {
                    return Err(GraphError::ShapeMismatch(format!(
                        "gemm inner dims differ: {sa} · {sb}"
                    )));
                }
                Shape::new(vec![sa.dims()[0], n])
            }
            OpKind::Unary(_) | OpKind::Scalar { .. } => shape(0).clone(),
            OpKind::Binary(_) => shape(0)
                .broadcast_with(shape(1))
                .map_err(|e| GraphError::ShapeMismatch(e.to_string()))?,
            OpKind::Reduce { dim, .. } => shape(0).with_dim(*dim, 1)?,
            OpKind::Broadcast { dim, extent } => {
                if shape(0).dims().get(*dim) != Some(&1) {
                    return Err(GraphError::ShapeMismatch(format!(
                        "broadcast requires unit dim {dim} on {}",
                        shape(0)
                    )));
                }
                shape(0).with_dim(*dim, *extent)?
            }
            OpKind::LayoutBarrier => {
                let out = self.shape(op.output);
                if out.volume() != shape(0).volume() {
                    return Err(GraphError::ShapeMismatch(format!(
                        "layout barrier changes volume: {} -> {}",
                        shape(0),
                        out
                    )));
                }
                out.clone()
            }
        })
    }

    /// Generates deterministic random bindings for all inputs and weights.
    pub fn random_bindings(&self, seed: u64) -> HashMap<String, Tensor> {
        let mut out = HashMap::new();
        let mut s = seed;
        for v in &self.values {
            if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
                out.insert(v.name.clone(), Tensor::random(v.shape.clone(), v.dtype, s));
                s = s.wrapping_add(1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::composite;

    fn softmax_graph(m: usize, n: usize) -> Graph {
        let mut g = Graph::new("softmax", DType::F32);
        let x = g.input("x", Shape::new(vec![m, n]));
        let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, x, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        g.mark_output(d);
        g
    }

    #[test]
    fn build_and_execute_softmax_matches_reference() {
        let g = softmax_graph(4, 16);
        let bindings = g.random_bindings(42);
        let out = g.execute(&bindings).unwrap();
        let expect = composite::softmax(&bindings["x"]).unwrap();
        assert!(out[0].allclose(&expect, 1e-6));
    }

    #[test]
    fn gemm_shape_inference_and_errors() {
        let mut g = Graph::new("t", DType::F32);
        let a = g.input("a", Shape::new(vec![4, 8]));
        let b = g.weight("b", Shape::new(vec![8, 6]));
        let c = g.gemm(a, b, false).unwrap();
        assert_eq!(g.shape(c).dims(), &[4, 6]);

        let bad = g.weight("bad", Shape::new(vec![7, 6]));
        assert!(g.gemm(a, bad, false).is_err());
    }

    #[test]
    fn gemm_transpose_b_shape() {
        let mut g = Graph::new("t", DType::F32);
        let q = g.input("q", Shape::new(vec![16, 64]));
        let k = g.input("k", Shape::new(vec![16, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        assert_eq!(g.shape(qk).dims(), &[16, 16]);
    }

    #[test]
    fn reduce_keeps_dim() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let r = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        assert_eq!(g.shape(r).dims(), &[4, 1]);
        assert!(g.reduce(ReduceOp::Sum, x, 2).is_err());
    }

    #[test]
    fn broadcast_validation() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 1]));
        let b = g.broadcast(x, 1, 8).unwrap();
        assert_eq!(g.shape(b).dims(), &[4, 8]);
        assert!(g.broadcast(b, 1, 16).is_err());
    }

    #[test]
    fn producer_and_consumers() {
        let g = softmax_graph(2, 4);
        let exp_out = g.ops()[2].output;
        assert!(g.producer(exp_out).is_some());
        // exp output feeds both the sum reduction and the division.
        assert_eq!(g.consumers(exp_out).len(), 2);
        let x = ValueId(0);
        assert!(g.producer(x).is_none());
    }

    #[test]
    fn execute_reports_missing_binding() {
        let g = softmax_graph(2, 4);
        let err = g.execute(&HashMap::new());
        assert!(matches!(err, Err(GraphError::MissingBinding(_))));
    }

    #[test]
    fn execute_rejects_wrong_shape_binding() {
        let g = softmax_graph(2, 4);
        let mut b = HashMap::new();
        b.insert(
            "x".to_string(),
            Tensor::zeros(Shape::new(vec![3, 4]), DType::F32),
        );
        assert!(matches!(g.execute(&b), Err(GraphError::ShapeMismatch(_))));
    }

    #[test]
    fn layout_barrier_reshapes() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 6]));
        let y = g.layout_barrier(x, Shape::new(vec![8, 3])).unwrap();
        assert_eq!(g.shape(y).dims(), &[8, 3]);
        assert!(g.layout_barrier(x, Shape::new(vec![5, 5])).is_err());
        g.mark_output(y);
        let bindings = g.random_bindings(1);
        let out = g.execute(&bindings).unwrap();
        assert_eq!(out[0].data(), bindings["x"].data());
    }

    #[test]
    fn validate_accepts_builder_graphs() {
        softmax_graph(2, 4).validate().unwrap();
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let w = g.weight("w", Shape::new(vec![8, 8]));
        let h = g.gemm(x, w, false).unwrap();
        let r = g.reduce(ReduceOp::Sum, h, 1).unwrap();
        let b = g.broadcast(r, 1, 8).unwrap();
        let y = g.binary(BinaryOp::Add, h, b).unwrap();
        g.mark_output(y);
        g.validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_outputs() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![2, 2]));
        g.unary(UnaryOp::Relu, x).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::ShapeMismatch(_))));
    }

    #[test]
    fn validate_rejects_duplicate_binding_names() {
        let mut g = Graph::new("t", DType::F32);
        g.input("x", Shape::new(vec![2, 2]));
        let x2 = g.input("x", Shape::new(vec![2, 2]));
        g.mark_output(x2);
        assert!(matches!(g.validate(), Err(GraphError::ShapeMismatch(_))));
    }

    #[test]
    fn validate_rejects_tampered_shapes() {
        let mut g = softmax_graph(2, 4);
        let last = g.values.len() - 1;
        g.values[last].shape = Shape::new(vec![3, 3]);
        assert!(matches!(g.validate(), Err(GraphError::ShapeMismatch(_))));
    }
}
