//! Operator dataflow-graph (DFG) IR for the SpaceFusion reproduction.
//!
//! Tensor programs are expressed as graphs of primitive operators over
//! 2-D (optionally batched) tensors: GEMM, reductions, broadcasts and
//! element-wise math. This is the input representation of the compiler
//! (the paper's "program building" stage, §5 Fig. 9): models are segmented
//! into subprograms at layout barriers, each subprogram is converted into a
//! Space-Mapping Graph, and the scheduler takes over from there.
//!
//! Batch-like leading dimensions (batch, attention heads) carry no
//! dependencies (paper footnote 2), so a [`Graph`] stores them as an
//! `instances` multiplier rather than explicit dimensions; all operators
//! are defined on the innermost 2-D space where the interesting
//! dependencies live.

pub mod analysis;
pub mod dot;
pub mod dsl;
pub mod graph;
pub mod segment;

pub use analysis::{op_class, op_cost, pattern_signature, OpClass, OpCost};
pub use dot::{escape_label, stats as graph_stats, to_dot as dfg_to_dot, GraphStats};
pub use dsl::{parse_graph, print_graph, ParseError};
pub use graph::{Graph, GraphError, OpId, OpKind, OpNode, ValueId, ValueInfo, ValueKind};
pub use segment::segment;
