//! DFG visualization and summary statistics.

use crate::analysis::{op_class, OpClass};
use crate::graph::{Graph, OpKind, ValueKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a node label for a double-quoted Graphviz string: quotes and
/// backslashes are backslash-escaped, newlines become the DOT `\n`
/// line-break escape. User-provided value names (parsed DSL files, model
/// importers) can contain any of these, and an unescaped occurrence
/// makes the whole dump unparseable.
pub fn escape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Renders the operator dataflow graph in Graphviz DOT (paper Fig. 5(a)
/// style: operators as nodes, tensors as edges).
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from("digraph dfg {\n  rankdir=TB;\n");
    // Source nodes for inputs/weights.
    for (vi, v) in graph.values().iter().enumerate() {
        match v.kind {
            ValueKind::Input => {
                let _ = writeln!(
                    out,
                    "  v{vi} [label=\"{}\", shape=box];",
                    escape_label(&v.name)
                );
            }
            ValueKind::Weight => {
                let _ = writeln!(
                    out,
                    "  v{vi} [label=\"{}\", shape=box, style=dashed];",
                    escape_label(&v.name)
                );
            }
            ValueKind::Intermediate => {}
        }
    }
    for (oi, op) in graph.ops().iter().enumerate() {
        let color = match op_class(&op.kind) {
            OpClass::ComputeIntensive => "lightcoral",
            OpClass::MemoryIntensive => "lightblue",
        };
        let _ = writeln!(
            out,
            "  o{oi} [label=\"{}\", style=filled, fillcolor={color}];",
            escape_label(&op.kind.name())
        );
        for &input in &op.inputs {
            match graph.producer(input) {
                Some(p) => {
                    let pi = graph
                        .ops()
                        .iter()
                        .position(|o| std::ptr::eq(o, p))
                        .expect("producer in graph");
                    let _ = writeln!(out, "  o{pi} -> o{oi};");
                }
                None => {
                    let _ = writeln!(out, "  v{} -> o{oi};", input.0);
                }
            }
        }
    }
    for &o in graph.outputs() {
        if let Some(p) = graph.producer(o) {
            let pi = graph
                .ops()
                .iter()
                .position(|x| std::ptr::eq(x, p))
                .expect("producer in graph");
            let _ = writeln!(out, "  out{} [label=\"out\", shape=doublecircle];", o.0);
            let _ = writeln!(out, "  o{pi} -> out{};", o.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Total operators.
    pub ops: usize,
    /// Compute-intensive operators (GEMMs).
    pub compute_intensive: usize,
    /// Non-element-wise memory-intensive operators (reductions,
    /// broadcasts, binary-with-broadcast).
    pub memory_intensive: usize,
    /// Element-wise operators.
    pub elementwise: usize,
    /// Operator histogram by display name.
    pub histogram: BTreeMap<String, usize>,
    /// Values by role: (inputs, weights, intermediates).
    pub values: (usize, usize, usize),
}

/// Computes [`GraphStats`].
pub fn stats(graph: &Graph) -> GraphStats {
    let mut s = GraphStats {
        ops: graph.ops().len(),
        compute_intensive: 0,
        memory_intensive: 0,
        elementwise: 0,
        histogram: BTreeMap::new(),
        values: (0, 0, 0),
    };
    for op in graph.ops() {
        *s.histogram.entry(op.kind.name()).or_insert(0) += 1;
        if op.kind.is_elementwise() {
            s.elementwise += 1;
        } else {
            match op_class(&op.kind) {
                OpClass::ComputeIntensive => s.compute_intensive += 1,
                OpClass::MemoryIntensive => s.memory_intensive += 1,
            }
        }
        let _: &OpKind = &op.kind;
    }
    for v in graph.values() {
        match v.kind {
            ValueKind::Input => s.values.0 += 1,
            ValueKind::Weight => s.values.1 += 1,
            ValueKind::Intermediate => s.values.2 += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha() -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![16, 8]));
        let k = g.input("k", Shape::new(vec![32, 8]));
        let v = g.input("v", Shape::new(vec![32, 8]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn dot_renders_all_nodes_and_edges() {
        let g = mha();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph dfg"));
        assert!(dot.contains("gemm"));
        assert!(dot.contains("lightcoral")); // CI coloring.
        assert!(dot.contains("lightblue")); // MI coloring.
        assert!(dot.contains("doublecircle")); // output marker.
                                               // Three input boxes.
        assert_eq!(dot.matches("shape=box").count(), 3);
    }

    #[test]
    fn stats_count_classes() {
        let g = mha();
        let s = stats(&g);
        assert_eq!(s.ops, 7);
        assert_eq!(s.compute_intensive, 2);
        assert_eq!(s.memory_intensive, 4); // max, sub(broadcast), sum, div(broadcast).
        assert_eq!(s.elementwise, 1); // exp.
        assert_eq!(s.histogram["gemm"], 2);
        assert_eq!(s.values.0, 3);
        assert_eq!(s.values.2, 7);
    }

    #[test]
    fn labels_with_quotes_and_newlines_stay_valid_graphviz() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x\"rows\"\nbatch", Shape::new(vec![4, 4]));
        let w = g.weight("w\\slash", Shape::new(vec![4, 4]));
        let y = g.gemm(x, w, false).unwrap();
        g.mark_output(y);
        let dot = to_dot(&g);
        assert!(dot.contains("label=\"x\\\"rows\\\"\\nbatch\""), "{dot}");
        assert!(dot.contains("label=\"w\\\\slash\""), "{dot}");
        // Every label attribute's quoted string must close on its line:
        // an even number of unescaped quotes per line.
        for line in dot.lines() {
            let unescaped = line.replace("\\\\", "").replace("\\\"", "");
            assert_eq!(
                unescaped.matches('"').count() % 2,
                0,
                "unbalanced quotes in {line:?}"
            );
        }
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\r\nb"), "a\\nb");
    }

    #[test]
    fn weight_nodes_are_dashed() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![4, 4]));
        let w = g.weight("w", Shape::new(vec![4, 4]));
        let y = g.gemm(x, w, false).unwrap();
        g.mark_output(y);
        let dot = to_dot(&g);
        assert!(dot.contains("style=dashed"));
    }
}
