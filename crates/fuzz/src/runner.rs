//! The fuzz campaign driver behind `sfc fuzz`.
//!
//! Iterates seeds, runs generator → oracle per seed, optionally
//! shrinks failures and writes them to the corpus directory, and
//! produces a deterministic text report (no wall-clock content — two
//! runs with the same flags yield byte-identical reports; durations
//! go only to the event sink).

use crate::corpus;
use crate::gen::{generate, GenConfig, GraphSpec};
use crate::oracle::{run_oracle, OracleOptions, OracleReport, POLICIES};
use crate::shrink::shrink;
use sf_gpu_sim::Arch;
use spacefusion::pipeline::{EventDetail, EventSink, PassEvent, PassId};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Predicate-evaluation budget per shrink run (each evaluation
/// compiles the candidate under all policies).
const SHRINK_ATTEMPTS: usize = 400;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed (the campaign covers `seed0..seed0 + seeds`).
    pub seed0: u64,
    /// Shrink failures and write minimized repros to `corpus_dir`.
    pub minimize: bool,
    /// Target architecture.
    pub arch: Arch,
    /// Where minimized repros are written (when `minimize`).
    pub corpus_dir: Option<PathBuf>,
    /// Fault plans injected per seed (`0` disables fault injection).
    /// Each plan recompiles and re-executes the graph under seeded
    /// faults and asserts the degraded result still matches the
    /// unfused reference bitwise (see [`crate::faultsim`]).
    pub faults: usize,
    /// Generator configuration.
    pub gen: GenConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seeds: 50,
            seed0: 0,
            minimize: false,
            arch: Arch::Ampere,
            corpus_dir: None,
            faults: 0,
            gen: GenConfig::default(),
        }
    }
}

/// One failing seed.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing recipe.
    pub spec: GraphSpec,
    /// Oracle report of the original (unshrunk) graph.
    pub report: OracleReport,
    /// Minimized recipe, when `minimize` was on and shrinking worked.
    pub minimized: Option<GraphSpec>,
    /// Corpus path the minimized repro was written to.
    pub corpus_path: Option<PathBuf>,
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seeds run.
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Architecture fuzzed.
    pub arch: Arch,
    /// Successful compilations across all seeds.
    pub compiles: usize,
    /// Successful executions across all seeds.
    pub executions: usize,
    /// Total operators generated across all seeds.
    pub ops: usize,
    /// The failing seeds, in order.
    pub failures: Vec<SeedFailure>,
}

impl FuzzReport {
    /// Whether the whole campaign was clean.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: seeds {}..{} ({}), arch {:?}, {} policies, threads [1, 2, max]",
            self.seed0,
            self.seed0 + self.seeds,
            self.seeds,
            self.arch,
            POLICIES.len()
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "seed {}: {} failure(s)",
                f.spec.seed,
                f.report.failures.len()
            );
            for fail in &f.report.failures {
                let _ = writeln!(out, "  {}", fail.render());
            }
            if let Some(min) = &f.minimized {
                let ops = min.build().map(|g| g.ops().len()).unwrap_or(0);
                match &f.corpus_path {
                    Some(p) => {
                        let _ = writeln!(out, "  minimized to {} op(s): {}", ops, p.display());
                    }
                    None => {
                        let _ = writeln!(out, "  minimized to {} op(s)", ops);
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "fuzz: {} seed(s), {} op(s), {} compile(s), {} execution(s), {} failing seed(s)",
            self.seeds,
            self.ops,
            self.compiles,
            self.executions,
            self.failures.len()
        );
        out
    }
}

/// Runs a fuzzing campaign, emitting one [`PassId::Fuzz`] event per
/// seed to `sink`.
pub fn run_fuzz(opts: &FuzzOptions, sink: &dyn EventSink) -> FuzzReport {
    let mut report = FuzzReport {
        seeds: opts.seeds,
        seed0: opts.seed0,
        arch: opts.arch,
        compiles: 0,
        executions: 0,
        ops: 0,
        failures: Vec::new(),
    };
    let oracle_opts = |seed: u64| OracleOptions {
        arch: opts.arch,
        binding_seed: seed,
        ..Default::default()
    };
    for seed in opts.seed0..opts.seed0.saturating_add(opts.seeds) {
        let start = Instant::now();
        let spec = generate(seed, &opts.gen);
        let oopts = oracle_opts(seed);
        let built = spec.build();
        let (ops, mut seed_report) = match &built {
            Ok(graph) => {
                let ops = graph.ops().len();
                let r = match graph.validate() {
                    Ok(()) => run_oracle(graph, &oopts),
                    Err(e) => OracleReport {
                        failures: vec![crate::oracle::Failure {
                            kind: crate::oracle::FailureKind::Reference,
                            policy: None,
                            threads: None,
                            detail: format!("generated graph is invalid: {e}"),
                        }],
                        ..Default::default()
                    },
                };
                (ops, r)
            }
            Err(e) => (
                0,
                OracleReport {
                    failures: vec![crate::oracle::Failure {
                        kind: crate::oracle::FailureKind::Reference,
                        policy: None,
                        threads: None,
                        detail: format!("spec failed to build: {e}"),
                    }],
                    ..Default::default()
                },
            ),
        };
        if opts.faults > 0 {
            if let Ok(graph) = &built {
                if graph.validate().is_ok() {
                    seed_report
                        .failures
                        .extend(crate::faultsim::run_fault_plans(
                            graph,
                            seed,
                            opts.faults,
                            opts.arch,
                        ));
                }
            }
        }
        report.compiles += seed_report.compiles;
        report.executions += seed_report.executions;
        report.ops += ops;

        let failed = !seed_report.ok();
        sink.record(PassEvent {
            pass: PassId::Fuzz,
            segment: 0,
            unit: format!("fz{seed}"),
            duration_us: start.elapsed().as_secs_f64() * 1e6,
            detail: EventDetail::Fuzz {
                seed,
                ops,
                failures: seed_report.failures.len(),
            },
        });
        if !failed {
            continue;
        }

        let mut failure = SeedFailure {
            spec: spec.clone(),
            report: seed_report,
            minimized: None,
            corpus_path: None,
        };
        if opts.minimize {
            let oopts = oracle_opts(seed);
            let res = shrink(&spec, |g| !run_oracle(g, &oopts).ok(), SHRINK_ATTEMPTS);
            let min_graph = res.spec.build().ok();
            if let Some(g) = min_graph {
                let min_report = run_oracle(&g, &oopts);
                if !min_report.ok() {
                    if let Some(dir) = &opts.corpus_dir {
                        let text = corpus::render_entry(&res.spec, &min_report);
                        if let Ok(p) = corpus::write_entry(dir, &format!("min_seed{seed}"), &text) {
                            failure.corpus_path = Some(p);
                        }
                    }
                    failure.minimized = Some(res.spec);
                }
            }
        }
        report.failures.push(failure);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacefusion::pipeline::{CollectingSink, NullSink};

    #[test]
    fn campaign_report_is_deterministic() {
        let opts = FuzzOptions {
            seeds: 8,
            seed0: 42,
            ..Default::default()
        };
        let a = run_fuzz(&opts, &NullSink);
        let b = run_fuzz(&opts, &NullSink);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.compiles, b.compiles);
        assert_eq!(a.executions, b.executions);
    }

    #[test]
    fn one_event_per_seed_reaches_the_sink() {
        let sink = CollectingSink::default();
        let opts = FuzzOptions {
            seeds: 5,
            seed0: 7,
            ..Default::default()
        };
        run_fuzz(&opts, &sink);
        let events = sink.events();
        let fuzz_events: Vec<_> = events.iter().filter(|e| e.pass == PassId::Fuzz).collect();
        assert_eq!(fuzz_events.len(), 5);
        for (i, e) in fuzz_events.iter().enumerate() {
            match e.detail {
                EventDetail::Fuzz { seed, ops, .. } => {
                    assert_eq!(seed, 7 + i as u64);
                    assert!(ops > 0);
                }
                _ => panic!("wrong detail {:?}", e.detail),
            }
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let opts = FuzzOptions {
            seeds: 6,
            seed0: 0,
            ..Default::default()
        };
        let r = run_fuzz(&opts, &NullSink);
        assert_eq!(r.seeds, 6);
        // Clean seeds contribute 5 compiles and 15 executions each.
        assert!(r.compiles <= 6 * POLICIES.len());
        assert!(r.executions <= 6 * POLICIES.len() * 3);
        let rendered = r.render();
        assert!(rendered.starts_with("fuzz: seeds 0..6 (6)"));
        assert!(rendered.contains("failing seed(s)"));
    }
}
