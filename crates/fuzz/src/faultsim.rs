//! Fault-injection sweeps: the driver behind `sfc faultsim` and the
//! `--faults` mode of `sfc fuzz`.
//!
//! For every generated graph the sweep first computes the unfused
//! reference output (`Graph::execute`), then replays the graph under K
//! deterministic [`FaultPlan`]s. Each plan arms injected panics, cache
//! poisoning, forced resource infeasibility, worker crashes, and
//! deadline expiries inside a fresh `CompileSession`; the graph is
//! compiled **twice** per plan (the second compilation revisits —  and
//! must recover from — any poisoned cache entry the first one
//! published) and then executed with `execute_resilient`, which falls
//! back to the reference interpreter for any kernel whose workers
//! crash.
//!
//! The resilience contract under test: every injected fault either
//! recovers transparently or degrades to a recorded rung whose output
//! is **bit-identical** to the unfused reference
//! ([`Tolerance::exact`]). A compile abort, an execute abort, a hang,
//! or any numeric difference is a [`FailureKind::Fault`] failure.

use crate::gen::{generate, GenConfig};
use crate::oracle::{Failure, FailureKind};
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::{compare_tensors, Tensor, Tolerance};
use spacefusion::codegen::ExecOptions;
use spacefusion::pipeline::{
    CompileOptions, CompileSession, EventDetail, EventSink, PassEvent, PassId,
};
use spacefusion::resilience::{silence_injected_panics, FaultInjector, FaultPlan};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct FaultSimOptions {
    /// Number of graph seeds to sweep.
    pub seeds: u64,
    /// First graph seed (the sweep covers `seed0..seed0 + seeds`).
    pub seed0: u64,
    /// Fault plans injected per graph seed.
    pub plans: usize,
    /// Target architecture.
    pub arch: Arch,
    /// Generator configuration.
    pub gen: GenConfig,
}

impl Default for FaultSimOptions {
    fn default() -> Self {
        FaultSimOptions {
            seeds: 25,
            seed0: 0,
            plans: 2,
            arch: Arch::Ampere,
            gen: GenConfig::default(),
        }
    }
}

/// Derives the fault-plan seed for plan `k` of graph seed `seed`.
/// Deterministic and collision-free across a sweep, and it walks the
/// plan-seed space densely so [`FaultPlan::from_seed`]'s kind cycling
/// covers all five fault kinds within a handful of plans.
pub fn plan_seed(seed: u64, k: usize) -> u64 {
    seed.wrapping_mul(7).wrapping_add(k as u64)
}

/// Outcome of one fault plan against one graph.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Graph seed.
    pub seed: u64,
    /// Fault-plan seed ([`FaultPlan::from_seed`]).
    pub plan_seed: u64,
    /// `"kind stage at site"` lines for faults that actually fired.
    pub fired: Vec<String>,
    /// Rendered degradation steps across both compilations and the
    /// resilient execution, in order.
    pub degraded: Vec<String>,
    /// Hard failures: aborts and bitwise divergence from the unfused
    /// reference.
    pub failures: Vec<Failure>,
}

/// Outcome of a whole sweep.
#[derive(Debug, Clone)]
pub struct FaultSimReport {
    /// Graph seeds swept.
    pub seeds: u64,
    /// First graph seed.
    pub seed0: u64,
    /// Fault plans per seed.
    pub plans_per_seed: usize,
    /// Architecture targeted.
    pub arch: Arch,
    /// One outcome per (seed, plan), in order.
    pub outcomes: Vec<PlanOutcome>,
}

impl FaultSimReport {
    /// Whether every injected fault recovered or degraded bit-exactly.
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.failures.is_empty())
    }

    /// Total faults fired across the sweep.
    pub fn fired(&self) -> usize {
        self.outcomes.iter().map(|o| o.fired.len()).sum()
    }

    /// Total degradation steps recorded across the sweep.
    pub fn degraded(&self) -> usize {
        self.outcomes.iter().map(|o| o.degraded.len()).sum()
    }

    /// Total hard failures across the sweep.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().map(|o| o.failures.len()).sum()
    }

    /// Deterministic text report (no wall-clock content).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "faultsim: seeds {}..{} ({}), arch {:?}, {} plan(s)/seed",
            self.seed0,
            self.seed0 + self.seeds,
            self.seeds,
            self.arch,
            self.plans_per_seed
        );
        for o in &self.outcomes {
            if o.fired.is_empty() && o.failures.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "seed {} plan {}: {} fired, {} degraded, {} failure(s)",
                o.seed,
                o.plan_seed,
                o.fired.len(),
                o.degraded.len(),
                o.failures.len()
            );
            for f in &o.fired {
                let _ = writeln!(out, "  fault: {f}");
            }
            for d in &o.degraded {
                let _ = writeln!(out, "  degraded {d}");
            }
            for f in &o.failures {
                let _ = writeln!(out, "  {}", f.render());
            }
        }
        let _ = writeln!(
            out,
            "faultsim: {} plan(s), {} fault(s) fired, {} degradation(s), {} failure(s), 0 abort(s)",
            self.outcomes.len(),
            self.fired(),
            self.degraded(),
            self.failures()
        );
        out
    }
}

/// Runs one fault plan against `graph`, comparing every output against
/// the precomputed `reference` bitwise.
fn run_plan(
    graph: &Graph,
    bindings: &HashMap<String, Tensor>,
    reference: &[Tensor],
    seed: u64,
    plan_seed: u64,
    arch: Arch,
) -> PlanOutcome {
    let injector = Arc::new(FaultInjector::new(FaultPlan::from_seed(plan_seed)));
    // Split-K re-associates sliced reductions (deterministic across
    // thread counts, but off the reference's serial association by
    // rounding), so the bit-exact-vs-reference contract checked below
    // requires split-free schedules.
    let opts = CompileOptions {
        slicing: spacefusion::sched::SlicingOptions {
            enable_split: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let session = CompileSession::new(arch, opts)
        .with_workers(1)
        .with_faults(injector.clone());
    let mut outcome = PlanOutcome {
        seed,
        plan_seed,
        fired: Vec::new(),
        degraded: Vec::new(),
        failures: Vec::new(),
    };
    let fault_failure = |detail: String| Failure {
        kind: FailureKind::Fault,
        policy: None,
        threads: None,
        detail,
    };

    // Compile twice in one session: round 0 trips schedule-stage
    // faults and may publish a poisoned cache entry; round 1 must
    // detect the poison on hit, invalidate, and recompute.
    let mut program = None;
    for round in 0..2 {
        match session.compile(graph) {
            Ok(p) => {
                outcome
                    .degraded
                    .extend(p.stats.degradations.iter().map(|s| s.render()));
                program = Some(p);
            }
            Err(e) => outcome
                .failures
                .push(fault_failure(format!("compile round {round} aborted: {e}"))),
        }
    }

    if let Some(p) = &program {
        match p.execute_resilient(bindings, &ExecOptions::with_threads(2), Some(&injector)) {
            Ok((outputs, exec_report)) => {
                outcome
                    .degraded
                    .extend(exec_report.steps.iter().map(|s| s.render()));
                for (i, (got, want)) in outputs.iter().zip(reference.iter()).enumerate() {
                    if let Err(m) = compare_tensors(got, want, Tolerance::exact()) {
                        outcome.failures.push(fault_failure(format!(
                            "output {i} of '{}' diverges from unfused reference: {m:?}",
                            graph.name()
                        )));
                    }
                }
            }
            Err(e) => outcome
                .failures
                .push(fault_failure(format!("execution aborted: {e}"))),
        }
    }
    outcome.fired = injector.fired();
    outcome
}

/// Runs `plans` fault plans against one prebuilt graph, returning only
/// the hard failures. This is the hook `sfc fuzz --faults` uses to add
/// fault coverage to each oracle seed.
pub fn run_fault_plans(graph: &Graph, seed: u64, plans: usize, arch: Arch) -> Vec<Failure> {
    silence_injected_panics();
    let bindings = graph.random_bindings(seed);
    let reference = match graph.execute(&bindings) {
        Ok(r) => r,
        Err(e) => {
            return vec![Failure {
                kind: FailureKind::Reference,
                policy: None,
                threads: None,
                detail: format!("reference execution failed: {e}"),
            }]
        }
    };
    (0..plans)
        .flat_map(|k| {
            run_plan(graph, &bindings, &reference, seed, plan_seed(seed, k), arch).failures
        })
        .collect()
}

/// Runs a fault-injection sweep, emitting one [`PassId::FaultSim`]
/// event per (seed, plan) to `sink`.
pub fn run_faultsim(opts: &FaultSimOptions, sink: &dyn EventSink) -> FaultSimReport {
    silence_injected_panics();
    let mut report = FaultSimReport {
        seeds: opts.seeds,
        seed0: opts.seed0,
        plans_per_seed: opts.plans,
        arch: opts.arch,
        outcomes: Vec::new(),
    };
    for seed in opts.seed0..opts.seed0.saturating_add(opts.seeds) {
        let spec = generate(seed, &opts.gen);
        let graph = match spec.build() {
            Ok(g) => g,
            Err(e) => {
                report.outcomes.push(PlanOutcome {
                    seed,
                    plan_seed: 0,
                    fired: Vec::new(),
                    degraded: Vec::new(),
                    failures: vec![Failure {
                        kind: FailureKind::Reference,
                        policy: None,
                        threads: None,
                        detail: format!("spec failed to build: {e}"),
                    }],
                });
                continue;
            }
        };
        let bindings = graph.random_bindings(seed);
        let reference = match graph.execute(&bindings) {
            Ok(r) => r,
            Err(e) => {
                report.outcomes.push(PlanOutcome {
                    seed,
                    plan_seed: 0,
                    fired: Vec::new(),
                    degraded: Vec::new(),
                    failures: vec![Failure {
                        kind: FailureKind::Reference,
                        policy: None,
                        threads: None,
                        detail: format!("reference execution failed: {e}"),
                    }],
                });
                continue;
            }
        };
        for k in 0..opts.plans {
            let start = Instant::now();
            let ps = plan_seed(seed, k);
            let outcome = run_plan(&graph, &bindings, &reference, seed, ps, opts.arch);
            sink.record(PassEvent {
                pass: PassId::FaultSim,
                segment: 0,
                unit: format!("fs{seed}p{k}"),
                duration_us: start.elapsed().as_secs_f64() * 1e6,
                detail: EventDetail::FaultSim {
                    seed,
                    plan_seed: ps,
                    fired: outcome.fired.len(),
                    degraded: outcome.degraded.len(),
                    failures: outcome.failures.len(),
                },
            });
            report.outcomes.push(outcome);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacefusion::pipeline::{CollectingSink, NullSink};

    #[test]
    fn sweep_recovers_from_every_injected_fault() {
        // 10 seeds x 2 plans covers all five fault kinds (the first
        // fault of plan_seed s is kind `s % 5`).
        let opts = FaultSimOptions {
            seeds: 10,
            plans: 2,
            ..Default::default()
        };
        let r = run_faultsim(&opts, &NullSink);
        assert_eq!(r.outcomes.len(), 20);
        assert!(r.ok(), "fault sweep must be clean:\n{}", r.render());
        assert!(r.fired() > 0, "faults must actually fire");
        let rendered = r.render();
        assert!(rendered.contains("0 abort(s)"));
    }

    #[test]
    fn sweep_report_is_deterministic() {
        let opts = FaultSimOptions {
            seeds: 6,
            seed0: 3,
            plans: 2,
            ..Default::default()
        };
        let a = run_faultsim(&opts, &NullSink);
        let b = run_faultsim(&opts, &NullSink);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.fired(), b.fired());
        assert_eq!(a.degraded(), b.degraded());
    }

    #[test]
    fn one_event_per_plan_reaches_the_sink() {
        let sink = CollectingSink::default();
        let opts = FaultSimOptions {
            seeds: 3,
            seed0: 11,
            plans: 2,
            ..Default::default()
        };
        run_faultsim(&opts, &sink);
        let events = sink.events();
        let fs: Vec<_> = events
            .iter()
            .filter(|e| e.pass == PassId::FaultSim)
            .collect();
        assert_eq!(fs.len(), 6);
        match &fs[0].detail {
            EventDetail::FaultSim {
                seed, plan_seed, ..
            } => {
                assert_eq!(*seed, 11);
                assert_eq!(*plan_seed, plan_seed_check(11, 0));
            }
            d => panic!("wrong detail {d:?}"),
        }
    }

    fn plan_seed_check(seed: u64, k: usize) -> u64 {
        plan_seed(seed, k)
    }

    #[test]
    fn fault_plans_on_prebuilt_graph_are_clean() {
        let spec = generate(5, &GenConfig::default());
        let graph = spec.build().unwrap();
        let failures = run_fault_plans(&graph, 5, 3, Arch::Ampere);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
