//! Corpus persistence: minimized repros as `.sfg` DSL files.
//!
//! Each corpus entry is a plain `sfc` DSL graph (parseable by
//! `sf_ir::dsl::parse_graph`) preceded by `#`-comment header lines
//! recording the generator seed and the failures the graph triggered
//! when it was minimized. The replay test in `crates/core` walks the
//! corpus directory and re-runs the oracle on every entry, so a fixed
//! bug stays fixed.

use crate::gen::GraphSpec;
use crate::oracle::OracleReport;
use sf_ir::dsl::{parse_graph, print_graph};
use sf_ir::Graph;
use std::io;
use std::path::{Path, PathBuf};

/// Renders the header + DSL text of a corpus entry.
pub fn render_entry(spec: &GraphSpec, report: &OracleReport) -> String {
    let mut out = String::new();
    out.push_str("# sf-fuzz minimized repro\n");
    out.push_str(&format!("# {}\n", spec.describe()));
    for f in &report.failures {
        out.push_str(&format!("# failure: {}\n", f.render()));
    }
    let graph = spec
        .build()
        .expect("minimized spec must build (the shrinker only keeps buildable candidates)");
    out.push_str(&print_graph(&graph));
    out
}

/// Writes a corpus entry as `dir/<name>.sfg`, creating `dir` if needed.
pub fn write_entry(dir: &Path, name: &str, text: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.sfg"));
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Reads every `.sfg` entry under `dir`, sorted by file name.
///
/// Returns an empty list when the directory does not exist (a repo
/// with no recorded failures has no corpus).
pub fn read_corpus(dir: &Path) -> io::Result<Vec<(PathBuf, Graph)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "sfg"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)?;
            let graph = parse_graph(&text).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", p.display()))
            })?;
            Ok((p, graph))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::OracleReport;

    #[test]
    fn entries_round_trip_through_the_dsl() {
        let dir = std::env::temp_dir().join("sf-fuzz-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = GenConfig::default();
        for seed in [3u64, 17, 41] {
            let spec = generate(seed, &cfg);
            let text = render_entry(&spec, &OracleReport::default());
            write_entry(&dir, &format!("seed{seed}"), &text).unwrap();
        }
        let corpus = read_corpus(&dir).unwrap();
        assert_eq!(corpus.len(), 3);
        for (path, graph) in &corpus {
            assert!(path.extension().is_some_and(|x| x == "sfg"));
            graph.validate().unwrap();
            assert!(!graph.ops().is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_reads_as_empty() {
        let corpus = read_corpus(Path::new("/nonexistent/sf-fuzz")).unwrap();
        assert!(corpus.is_empty());
    }
}
