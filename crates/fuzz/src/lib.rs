//! Differential fuzzing for the SpaceFusion compiler.
//!
//! The compiler's correctness contract is simple to state: for every
//! well-formed graph, every fusion policy, and every execution thread
//! count, the compiled program must produce the same outputs as the
//! reference interpreter (`sf_ir::Graph::execute`), up to the
//! re-association drift that slicing and UTA rewriting legitimately
//! introduce. This crate checks that contract on *randomly generated*
//! programs instead of the hand-picked zoo in the test suite:
//!
//! * [`gen`] — a seeded recipe generator over the paper's operator
//!   space (element-wise chains, GEMMs, reductions, broadcasts,
//!   layout barriers, softmax/layernorm/rmsnorm/attention motifs),
//!   driven by the in-tree `XorShiftRng`. A seed fully determines the
//!   graph; there is no external fuzzing dependency.
//! * [`oracle`] — the differential oracle: reference execution vs
//!   every [`FusionPolicy`](spacefusion::FusionPolicy) × worker-thread
//!   count `{1, 2, max}`, compared with the shared ULP/abs-tol
//!   comparator (`sf_tensor::compare`); each compiled candidate also
//!   runs the static verifier, and error-level findings count as
//!   failures.
//! * [`shrink`] — a greedy recipe shrinker producing 1-minimal repros
//!   (drop steps, shrink extents, simplify ops down a deterministic
//!   ladder).
//! * [`corpus`] — minimized repros persisted as plain `sfc` DSL files
//!   under `tests/corpus/`, replayed by `crates/core/tests/
//!   fuzz_corpus.rs` so fixed bugs stay fixed.
//! * [`runner`] — the campaign driver behind `sfc fuzz`: seeds in,
//!   deterministic report out, one `PassId::Fuzz` instrumentation
//!   event per seed.
//! * [`faultsim`] — deterministic fault-injection sweeps behind `sfc
//!   faultsim` and `sfc fuzz --faults`: each seeded graph is replayed
//!   under seeded `FaultPlan`s (injected panics, cache poisoning,
//!   forced infeasibility, worker crashes, deadline expiry), asserting
//!   that every fault recovers or degrades to output bit-identical to
//!   the unfused reference.
//!
//! # Examples
//!
//! ```
//! use sf_fuzz::{generate, run_oracle, GenConfig, OracleOptions};
//!
//! let spec = generate(42, &GenConfig::default());
//! let graph = spec.build().unwrap();
//! let report = run_oracle(&graph, &OracleOptions::default());
//! assert!(report.ok(), "{:?}", report.failures);
//! ```

pub mod corpus;
pub mod faultsim;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use faultsim::{run_fault_plans, run_faultsim, FaultSimOptions, FaultSimReport, PlanOutcome};
pub use gen::{generate, GenConfig, GraphSpec, Step};
pub use oracle::{
    derive_tolerance, run_oracle, Failure, FailureKind, OracleOptions, OracleReport, POLICIES,
};
pub use runner::{run_fuzz, FuzzOptions, FuzzReport, SeedFailure};
pub use shrink::{shrink, ShrinkResult};
