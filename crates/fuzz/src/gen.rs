//! Seeded random graph generation.
//!
//! The generator produces a [`GraphSpec`] — a *recipe* of [`Step`]s over
//! a root input — rather than a `Graph` directly. Recipes keep every
//! mutation well-formed by construction (a step that is infeasible in
//! the current shape context is skipped at build time, mirroring how
//! the original property-test builder worked), which is exactly what
//! the shrinker needs: it mutates the recipe and rebuilds, never
//! surgically editing a graph.
//!
//! The vocabulary covers the paper's operator space: element-wise
//! chains, GEMMs (with the attention-style `1/√k` rescale), reductions
//! along either axis, broadcasts, layout barriers, and the
//! softmax / layernorm / rmsnorm / attention motifs whose sliced
//! reductions drive the UTA machinery (§4.3). Magnitudes stay bounded —
//! `exp` only appears behind a max-subtraction — so reference vs fused
//! differences are attributable to re-association, not overflow races.
//!
//! Everything is driven by the in-tree [`XorShiftRng`]; a seed fully
//! determines the recipe on every platform.

use sf_ir::{Graph, GraphError, ValueId};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::rng::XorShiftRng;
use sf_tensor::{DType, Shape};

/// One recipe step. Steps that are infeasible in the current shape
/// context (e.g. reducing a unit dimension) are skipped during
/// [`GraphSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Element-wise unary op on the current value.
    Unary(UnaryOp),
    /// `cur op constant`.
    Scalar(BinaryOp, f32),
    /// Binary against the root input (skipped when not broadcastable).
    CombineInput(BinaryOp),
    /// Binary against a fresh `[1, n]` weight row.
    CombineWeight(BinaryOp),
    /// Reduction along `dim` (skipped when the dim — or the other dim —
    /// has unit extent, so at least one parallel dimension survives).
    Reduce(ReduceOp, usize),
    /// Re-expand a unit dimension to the extent it last had.
    Broadcast(usize),
    /// GEMM against a fresh weight, followed by a `1/√k` rescale.
    Gemm {
        /// Output width of the fresh weight.
        width: usize,
        /// Whether the weight is stored `[width, k]`.
        transpose_b: bool,
    },
    /// Row-softmax motif over dim 1 (max, sub, exp, sum, div).
    Softmax,
    /// LayerNorm motif with fresh scale/bias weights.
    LayerNorm,
    /// RMSNorm motif with a fresh scale weight.
    RmsNorm,
    /// Attention tail: fresh K/V inputs of `seq` rows, `QKᵀ` → `1/√k` →
    /// softmax → `·V`. The motif whose temporal slicing derives the
    /// online-softmax (FlashAttention) update functions.
    Attention {
        /// Sequence length of the fresh K/V inputs.
        seq: usize,
    },
    /// Deep-K reduction: GEMM-project to `width` columns (with the
    /// `1/√k` rescale), then reduce them away. With widths far beyond
    /// the root extents this is the shape whose tiny spatial grid makes
    /// the tuner reach for split-K partial accumulators.
    DeepReduce {
        /// Reduction folding the projected columns.
        op: ReduceOp,
        /// Projected width (the reduction depth).
        width: usize,
    },
    /// Decode-shaped attention: collapse the current value to a single
    /// query row (row mean), then run the attention tail against fresh
    /// K/V inputs of `kv` rows. One query row × a long KV cache is the
    /// canonical split-K workload (FlashDecoding).
    DecodeAttention {
        /// KV-cache length of the fresh K/V inputs.
        kv: usize,
    },
    /// Layout barrier: reinterpret `[a, b]` as `[b, a]`.
    Reshape,
}

/// A fully deterministic graph recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Seed the recipe was generated from (naming / reporting only).
    pub seed: u64,
    /// Root input rows.
    pub m: usize,
    /// Root input columns.
    pub n: usize,
    /// Storage precision.
    pub dtype: DType,
    /// Dependency-free instance multiplier.
    pub instances: usize,
    /// Also mark the midpoint intermediate as a program output.
    pub multi_output: bool,
    /// The recipe.
    pub steps: Vec<Step>,
}

/// Knobs of the generator (the property tests disable the features the
/// whole-graph SMG builder does not model, e.g. layout barriers).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum steps per recipe (at least 1 is generated).
    pub max_steps: usize,
    /// Candidate root extents.
    pub dims: Vec<usize>,
    /// Candidate GEMM output widths.
    pub gemm_widths: Vec<usize>,
    /// Candidate attention sequence lengths.
    pub seq_lens: Vec<usize>,
    /// Candidate deep-K extents (DeepReduce widths and DecodeAttention
    /// KV lengths) — sized to push the tuner into split-K schedules.
    pub deep_extents: Vec<usize>,
    /// Allow layout-barrier steps.
    pub reshape: bool,
    /// Allow the attention motif.
    pub attention: bool,
    /// Allow `instances > 1`.
    pub instances: bool,
    /// Allow multi-output graphs.
    pub multi_output: bool,
    /// Allow F16 storage precision.
    pub f16: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_steps: 8,
            dims: vec![2, 3, 4, 5, 7, 8, 12, 16, 17, 24, 32, 33, 48, 64],
            gemm_widths: vec![2, 3, 4, 8, 16, 17, 32],
            seq_lens: vec![4, 8, 16, 24, 33, 64],
            deep_extents: vec![128, 256, 512],
            reshape: true,
            attention: true,
            instances: true,
            multi_output: true,
            f16: true,
        }
    }
}

const SAFE_UNARIES: [UnaryOp; 9] = [
    UnaryOp::Relu,
    UnaryOp::Tanh,
    UnaryOp::Sigmoid,
    UnaryOp::Gelu,
    UnaryOp::Silu,
    UnaryOp::Abs,
    UnaryOp::Neg,
    UnaryOp::Sqr,
    UnaryOp::Identity,
];

/// `Div` is excluded: dividing by near-zero random data produces
/// magnitudes whose overflow behaviour is order-sensitive, which the
/// oracle would mis-attribute to the compiler.
const SAFE_BINARIES: [BinaryOp; 5] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Max,
    BinaryOp::Min,
];

const REDUCES: [ReduceOp; 3] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Mean];

const SCALARS: [f32; 5] = [-1.5, -0.5, 0.5, 1.0, 2.0];

fn pick<'a, T>(rng: &mut XorShiftRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// Generates the recipe for `seed` under `cfg`.
pub fn generate(seed: u64, cfg: &GenConfig) -> GraphSpec {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let m = *pick(&mut rng, &cfg.dims);
    let n = *pick(&mut rng, &cfg.dims);
    let dtype = if cfg.f16 && rng.below(4) == 0 {
        DType::F16
    } else {
        DType::F32
    };
    let instances = if cfg.instances && rng.below(10) == 0 {
        2 + rng.below(3) as usize
    } else {
        1
    };
    let multi_output = cfg.multi_output && rng.below(5) == 0;
    let count = 1 + rng.below(cfg.max_steps.max(1) as u64) as usize;
    let steps = (0..count).map(|_| random_step(&mut rng, cfg)).collect();
    GraphSpec {
        seed,
        m,
        n,
        dtype,
        instances,
        multi_output,
        steps,
    }
}

fn random_step(rng: &mut XorShiftRng, cfg: &GenConfig) -> Step {
    loop {
        // Weighted draw over the vocabulary (out of 100).
        let roll = rng.below(100);
        return match roll {
            0..=17 => Step::Unary(*pick(rng, &SAFE_UNARIES)),
            18..=26 => Step::Scalar(*pick(rng, &SAFE_BINARIES), *pick(rng, &SCALARS)),
            27..=35 => Step::CombineInput(*pick(rng, &SAFE_BINARIES)),
            36..=44 => Step::CombineWeight(*pick(rng, &SAFE_BINARIES)),
            45..=56 => Step::Reduce(*pick(rng, &REDUCES), rng.below(2) as usize),
            57..=63 => Step::Broadcast(rng.below(2) as usize),
            64..=73 => Step::Gemm {
                width: *pick(rng, &cfg.gemm_widths),
                transpose_b: rng.below(2) == 0,
            },
            74..=79 => Step::Softmax,
            80..=83 => Step::LayerNorm,
            84..=87 => Step::RmsNorm,
            88..=91 => {
                if !cfg.attention {
                    continue;
                }
                Step::Attention {
                    seq: *pick(rng, &cfg.seq_lens),
                }
            }
            92..=94 => Step::DeepReduce {
                op: *pick(rng, &REDUCES),
                width: *pick(rng, &cfg.deep_extents),
            },
            95..=97 => {
                if !cfg.attention {
                    continue;
                }
                Step::DecodeAttention {
                    kv: *pick(rng, &cfg.deep_extents),
                }
            }
            _ => {
                if !cfg.reshape {
                    continue;
                }
                Step::Reshape
            }
        };
    }
}

impl GraphSpec {
    /// Builds the graph the recipe describes. Infeasible steps are
    /// skipped; the result always has at least one operator and at
    /// least one non-unit dimension at every intermediate value.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let mut g = Graph::new(format!("fz{}", self.seed), self.dtype);
        g.instances = self.instances;
        let x = g.input("x", Shape::new(vec![self.m, self.n]));
        let mut cur = x;
        // The extent each axis last had while non-unit (what a
        // Broadcast step restores after a reduction).
        let mut last_extent = [self.m.max(2), self.n.max(2)];
        let mut fresh = 0usize;
        let mut mid: Option<ValueId> = None;
        let midpoint = self.steps.len() / 2;
        for (i, step) in self.steps.iter().enumerate() {
            cur = self.apply(&mut g, cur, x, step, &mut last_extent, &mut fresh)?;
            for (d, e) in g.shape(cur).dims().iter().enumerate() {
                if *e > 1 && d < 2 {
                    last_extent[d] = *e;
                }
            }
            if i + 1 == midpoint {
                mid = Some(cur);
            }
        }
        if g.ops().is_empty() {
            // Every step was infeasible; keep the graph non-trivial.
            cur = g.unary(UnaryOp::Relu, cur)?;
        }
        if self.multi_output {
            if let Some(v) = mid.filter(|v| *v != cur) {
                g.mark_output(v);
            }
        }
        g.mark_output(cur);
        Ok(g)
    }

    fn apply(
        &self,
        g: &mut Graph,
        cur: ValueId,
        x: ValueId,
        step: &Step,
        last_extent: &mut [usize; 2],
        fresh: &mut usize,
    ) -> Result<ValueId, GraphError> {
        let dims = |g: &Graph, v: ValueId| -> Vec<usize> { g.shape(v).dims().to_vec() };
        let d = dims(g, cur);
        Ok(match step {
            Step::Unary(u) => g.unary(*u, cur)?,
            Step::Scalar(op, v) => g.scalar(*op, cur, *v)?,
            Step::CombineInput(op) => {
                if g.shape(x).broadcast_with(g.shape(cur)).is_err() {
                    return Ok(cur);
                }
                g.binary(*op, x, cur)?
            }
            Step::CombineWeight(op) => {
                let w = g.weight(format!("w{fresh}"), Shape::new(vec![1, d[1]]));
                *fresh += 1;
                g.binary(*op, cur, w)?
            }
            Step::Reduce(op, dim) => {
                // Keep at least one parallel dimension alive: reducing
                // away the last non-unit dim leaves nothing to slice
                // spatially (paper Alg. 1 rejects such programs).
                if d[*dim] <= 1 || d[1 - *dim] <= 1 {
                    return Ok(cur);
                }
                g.reduce(*op, cur, *dim)?
            }
            Step::Broadcast(dim) => {
                if d[*dim] != 1 || last_extent[*dim] <= 1 {
                    return Ok(cur);
                }
                g.broadcast(cur, *dim, last_extent[*dim])?
            }
            Step::Gemm { width, transpose_b } => {
                if d[0] <= 1 || d[1] <= 1 {
                    return Ok(cur);
                }
                let k = d[1];
                let shape = if *transpose_b {
                    Shape::new(vec![*width, k])
                } else {
                    Shape::new(vec![k, *width])
                };
                let w = g.weight(format!("w{fresh}"), shape);
                *fresh += 1;
                let mm = g.gemm(cur, w, *transpose_b)?;
                g.scalar(BinaryOp::Mul, mm, 1.0 / (k as f32).sqrt())?
            }
            Step::Softmax => {
                if d[1] <= 1 || d[0] <= 1 {
                    return Ok(cur);
                }
                softmax_tail(g, cur)?
            }
            Step::LayerNorm => {
                if d[1] <= 1 || d[0] <= 1 {
                    return Ok(cur);
                }
                let mean = g.reduce(ReduceOp::Mean, cur, 1)?;
                let c = g.binary(BinaryOp::Sub, cur, mean)?;
                let sq = g.unary(UnaryOp::Sqr, c)?;
                let var = g.reduce(ReduceOp::Mean, sq, 1)?;
                let veps = g.scalar(BinaryOp::Add, var, 1e-5)?;
                let std = g.unary(UnaryOp::Sqrt, veps)?;
                let norm = g.binary(BinaryOp::Div, c, std)?;
                let w = g.weight(format!("w{fresh}"), Shape::new(vec![1, d[1]]));
                let b = g.weight(format!("b{fresh}"), Shape::new(vec![1, d[1]]));
                *fresh += 1;
                let sc = g.binary(BinaryOp::Mul, norm, w)?;
                g.binary(BinaryOp::Add, sc, b)?
            }
            Step::RmsNorm => {
                if d[1] <= 1 || d[0] <= 1 {
                    return Ok(cur);
                }
                let sq = g.unary(UnaryOp::Sqr, cur)?;
                let ms = g.reduce(ReduceOp::Mean, sq, 1)?;
                let eps = g.scalar(BinaryOp::Add, ms, 1e-5)?;
                let rms = g.unary(UnaryOp::Sqrt, eps)?;
                let n1 = g.binary(BinaryOp::Div, cur, rms)?;
                let w = g.weight(format!("w{fresh}"), Shape::new(vec![1, d[1]]));
                *fresh += 1;
                g.binary(BinaryOp::Mul, n1, w)?
            }
            Step::Attention { seq } => {
                if d[0] <= 1 || d[1] <= 1 {
                    return Ok(cur);
                }
                let k = d[1];
                let kk = g.input(format!("k{fresh}"), Shape::new(vec![*seq, k]));
                let v = g.input(format!("v{fresh}"), Shape::new(vec![*seq, k]));
                *fresh += 1;
                let qk = g.gemm(cur, kk, true)?;
                let sc = g.scalar(BinaryOp::Mul, qk, 1.0 / (k as f32).sqrt())?;
                let sm = softmax_tail(g, sc)?;
                g.gemm(sm, v, false)?
            }
            Step::DeepReduce { op, width } => {
                if d[0] <= 1 || d[1] <= 1 {
                    return Ok(cur);
                }
                let k = d[1];
                let w = g.weight(format!("w{fresh}"), Shape::new(vec![k, *width]));
                *fresh += 1;
                let mm = g.gemm(cur, w, false)?;
                let sc = g.scalar(BinaryOp::Mul, mm, 1.0 / (k as f32).sqrt())?;
                g.reduce(*op, sc, 1)?
            }
            Step::DecodeAttention { kv } => {
                if d[1] <= 1 {
                    return Ok(cur);
                }
                let k = d[1];
                // Decode shape: a fresh single-row query makes the score
                // matrix [1, kv] — the occupancy-starved case split-K
                // targets. The incoming chain joins back through a
                // broadcast combine so the step composes anywhere.
                let q = g.input(format!("q{fresh}"), Shape::new(vec![1, k]));
                let kk = g.input(format!("k{fresh}"), Shape::new(vec![*kv, k]));
                let v = g.input(format!("v{fresh}"), Shape::new(vec![*kv, k]));
                *fresh += 1;
                let qk = g.gemm(q, kk, true)?;
                let sc = g.scalar(BinaryOp::Mul, qk, 1.0 / (k as f32).sqrt())?;
                let sm = softmax_tail(g, sc)?;
                let att = g.gemm(sm, v, false)?;
                g.binary(BinaryOp::Add, cur, att)?
            }
            Step::Reshape => {
                if d[0] == d[1] {
                    return Ok(cur);
                }
                g.layout_barrier(cur, Shape::new(vec![d[1], d[0]]))?
            }
        })
    }

    /// A stable one-line description (used in corpus headers).
    pub fn describe(&self) -> String {
        format!(
            "seed={} m={} n={} dtype={:?} instances={} multi_output={} steps={:?}",
            self.seed, self.m, self.n, self.dtype, self.instances, self.multi_output, self.steps
        )
    }
}

fn softmax_tail(g: &mut Graph, cur: ValueId) -> Result<ValueId, GraphError> {
    let mx = g.reduce(ReduceOp::Max, cur, 1)?;
    let sub = g.binary(BinaryOp::Sub, cur, mx)?;
    let e = g.unary(UnaryOp::Exp, sub)?;
    let z = g.reduce(ReduceOp::Sum, e, 1)?;
    g.binary(BinaryOp::Div, e, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
        assert_ne!(generate(1, &cfg), generate(2, &cfg));
    }

    #[test]
    fn generated_graphs_build_and_execute() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let spec = generate(seed, &cfg);
            let g = spec.build().unwrap_or_else(|e| {
                panic!("seed {seed} failed to build: {e}\n{}", spec.describe())
            });
            assert!(!g.ops().is_empty(), "seed {seed} built an empty graph");
            g.validate()
                .unwrap_or_else(|e| panic!("seed {seed} invalid: {e}\n{}", spec.describe()));
            let bindings = g.random_bindings(seed);
            let out = g
                .execute(&bindings)
                .unwrap_or_else(|e| panic!("seed {seed} reference failed: {e}"));
            assert_eq!(out.len(), g.outputs().len());
            for t in &out {
                assert!(
                    t.data().iter().all(|v| v.is_finite()),
                    "seed {seed} produced non-finite reference values\n{}",
                    spec.describe()
                );
            }
        }
    }

    #[test]
    fn intermediates_keep_a_parallel_dim() {
        // Weights may be scalar-like `[1, 1]` (two-axis broadcast is a
        // legitimate case to fuzz); computed values must always keep a
        // spatial dimension or Alg. 1 has nothing to slice.
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let spec = generate(seed, &cfg);
            // Decode-shaped attention collapses the query to a single row,
            // so its softmax statistics are legitimately `[1, 1]`: split-K
            // slices the reduction axis instead of a spatial one there.
            if spec
                .steps
                .iter()
                .any(|s| matches!(s, Step::DecodeAttention { .. }))
            {
                continue;
            }
            let g = spec.build().unwrap();
            for (vi, v) in g.values().iter().enumerate() {
                if v.kind != sf_ir::ValueKind::Intermediate {
                    continue;
                }
                assert!(
                    v.shape.dims().iter().any(|&e| e > 1),
                    "seed {seed} value {vi} is fully reduced: {}",
                    v.shape
                );
            }
        }
    }

    #[test]
    fn vocabulary_is_exercised() {
        let cfg = GenConfig::default();
        let mut gemm = 0;
        let mut motif = 0;
        let mut reduce = 0;
        let mut reshape = 0;
        let mut deep = 0;
        for seed in 0..500 {
            for s in &generate(seed, &cfg).steps {
                match s {
                    Step::Gemm { .. } => gemm += 1,
                    Step::Softmax | Step::LayerNorm | Step::RmsNorm | Step::Attention { .. } => {
                        motif += 1
                    }
                    Step::Reduce(..) => reduce += 1,
                    Step::Reshape => reshape += 1,
                    Step::DeepReduce { .. } | Step::DecodeAttention { .. } => deep += 1,
                    _ => {}
                }
            }
        }
        assert!(gemm > 50, "gemm {gemm}");
        assert!(motif > 50, "motif {motif}");
        assert!(reduce > 50, "reduce {reduce}");
        assert!(reshape > 5, "reshape {reshape}");
        assert!(deep > 30, "deep {deep}");
    }

    #[test]
    fn restricted_config_respects_flags() {
        let cfg = GenConfig {
            reshape: false,
            attention: false,
            instances: false,
            multi_output: false,
            f16: false,
            ..GenConfig::default()
        };
        for seed in 0..300 {
            let spec = generate(seed, &cfg);
            assert_eq!(spec.instances, 1);
            assert!(!spec.multi_output);
            assert_eq!(spec.dtype, DType::F32);
            for s in &spec.steps {
                assert!(!matches!(
                    s,
                    Step::Reshape | Step::Attention { .. } | Step::DecodeAttention { .. }
                ));
            }
        }
    }
}
