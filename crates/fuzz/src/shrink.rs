//! Greedy recipe shrinker.
//!
//! Given a failing [`GraphSpec`] and a predicate that re-checks the
//! failure, the shrinker tries ever-smaller candidate recipes and
//! keeps each one that still fails, until a full sweep makes no
//! progress. Because candidates are recipes (not graphs), every
//! candidate builds a well-formed graph by construction.
//!
//! Three move families, applied in rounds:
//!
//! 1. **Drop steps** — remove halves, then quarters, then single steps
//!    (ddmin-style), from the back so later context-free steps go
//!    first.
//! 2. **Shrink dimensions** — root extents and per-step parameters
//!    (GEMM width, attention sequence length) jump straight to 2, then
//!    halve; `instances` drops to 1; the extra output is removed.
//! 3. **Simplify ops** — each step steps down a deterministic ladder
//!    (attention → softmax → reduce-sum; GEMM → weight-add → relu;
//!    any unary → relu; any scalar constant → `+1.0`), so the final
//!    repro names the simplest operator that still triggers the bug.
//!
//! The predicate is re-evaluated on every candidate, so the result is
//! `1-minimal` with respect to the move set: no single remaining move
//! can be applied without losing the failure. Everything is
//! deterministic — same input, same predicate, same repro.

use crate::gen::{GraphSpec, Step};
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized recipe.
    pub spec: GraphSpec,
    /// Candidate recipes evaluated (predicate invocations).
    pub attempts: usize,
    /// Accepted shrinking moves.
    pub accepted: usize,
}

/// Shrinks `spec` while `still_fails` holds on the built graph.
///
/// `still_fails` must return `true` for the initial spec's graph;
/// otherwise the input is returned unchanged. `max_attempts` bounds
/// predicate invocations (each one typically compiles the graph five
/// times), so shrinking terminates even on pathological predicates.
pub fn shrink<F>(spec: &GraphSpec, still_fails: F, max_attempts: usize) -> ShrinkResult
where
    F: Fn(&Graph) -> bool,
{
    let check = |s: &GraphSpec| -> bool { s.build().map(|g| still_fails(&g)).unwrap_or(false) };
    let mut cur = spec.clone();
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    if !check(&cur) {
        return ShrinkResult {
            spec: cur,
            attempts: 1,
            accepted: 0,
        };
    }
    attempts += 1;

    loop {
        let mut progressed = false;
        for candidate in moves(&cur) {
            if attempts >= max_attempts {
                return ShrinkResult {
                    spec: cur,
                    attempts,
                    accepted,
                };
            }
            attempts += 1;
            if check(&candidate) {
                cur = candidate;
                accepted += 1;
                progressed = true;
                break; // restart the move enumeration from the smaller spec
            }
        }
        if !progressed {
            return ShrinkResult {
                spec: cur,
                attempts,
                accepted,
            };
        }
    }
}

/// Candidate recipes strictly "smaller" than `spec`, in priority order.
fn moves(spec: &GraphSpec) -> Vec<GraphSpec> {
    let mut out = Vec::new();
    let n = spec.steps.len();

    // 1. Drop chunks of steps: halves, quarters, then singles, from
    // the back.
    let mut chunk = n.div_ceil(2);
    while chunk >= 1 {
        let mut start = n.saturating_sub(chunk);
        loop {
            if chunk < n {
                let mut c = spec.clone();
                c.steps.drain(start..(start + chunk).min(n));
                out.push(c);
            }
            if start == 0 {
                break;
            }
            start = start.saturating_sub(chunk);
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // 2. Structural scalars.
    if spec.instances > 1 {
        let mut c = spec.clone();
        c.instances = 1;
        out.push(c);
    }
    if spec.multi_output {
        let mut c = spec.clone();
        c.multi_output = false;
        out.push(c);
    }
    for (get, set) in [
        (
            spec.m,
            (&|c: &mut GraphSpec, v| c.m = v) as &dyn Fn(&mut GraphSpec, usize),
        ),
        (spec.n, &|c: &mut GraphSpec, v| c.n = v),
    ] {
        for v in shrunk_extents(get) {
            let mut c = spec.clone();
            set(&mut c, v);
            out.push(c);
        }
    }

    // 3. Per-step parameter shrinks and op simplifications.
    for (i, step) in spec.steps.iter().enumerate() {
        match step {
            Step::Gemm { width, transpose_b } => {
                for v in shrunk_extents(*width) {
                    let mut c = spec.clone();
                    c.steps[i] = Step::Gemm {
                        width: v,
                        transpose_b: *transpose_b,
                    };
                    out.push(c);
                }
                if *transpose_b {
                    let mut c = spec.clone();
                    c.steps[i] = Step::Gemm {
                        width: *width,
                        transpose_b: false,
                    };
                    out.push(c);
                }
            }
            Step::Attention { seq } => {
                for v in shrunk_extents(*seq) {
                    let mut c = spec.clone();
                    c.steps[i] = Step::Attention { seq: v };
                    out.push(c);
                }
            }
            Step::DeepReduce { op, width } => {
                for v in shrunk_extents(*width) {
                    let mut c = spec.clone();
                    c.steps[i] = Step::DeepReduce { op: *op, width: v };
                    out.push(c);
                }
            }
            Step::DecodeAttention { kv } => {
                for v in shrunk_extents(*kv) {
                    let mut c = spec.clone();
                    c.steps[i] = Step::DecodeAttention { kv: v };
                    out.push(c);
                }
            }
            _ => {}
        }
        for simpler in simplify(step) {
            let mut c = spec.clone();
            c.steps[i] = simpler;
            out.push(c);
        }
    }
    out
}

/// Smaller extents to try: straight to 2, then halved.
fn shrunk_extents(v: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if v > 2 {
        out.push(2);
        if v / 2 > 2 {
            out.push(v / 2);
        }
    }
    out
}

/// One rung down the simplification ladder for a step, simplest first.
fn simplify(step: &Step) -> Vec<Step> {
    let relu = Step::Unary(UnaryOp::Relu);
    match step {
        Step::Unary(UnaryOp::Relu) => vec![],
        Step::Unary(_) => vec![relu],
        Step::Scalar(BinaryOp::Add, v) if *v == 1.0 => vec![],
        Step::Scalar(..) => vec![Step::Scalar(BinaryOp::Add, 1.0)],
        Step::CombineInput(BinaryOp::Add) => vec![],
        Step::CombineInput(_) => vec![Step::CombineInput(BinaryOp::Add)],
        Step::CombineWeight(BinaryOp::Add) => vec![relu],
        Step::CombineWeight(_) => vec![Step::CombineWeight(BinaryOp::Add)],
        Step::Reduce(ReduceOp::Sum, _) => vec![],
        Step::Reduce(_, dim) => vec![Step::Reduce(ReduceOp::Sum, *dim)],
        Step::Broadcast(_) => vec![],
        Step::Gemm { .. } => vec![relu, Step::CombineWeight(BinaryOp::Add)],
        Step::Softmax => vec![Step::Reduce(ReduceOp::Sum, 1)],
        Step::LayerNorm | Step::RmsNorm => vec![Step::Reduce(ReduceOp::Sum, 1), Step::Softmax],
        Step::Attention { .. } => vec![Step::Reduce(ReduceOp::Sum, 1), Step::Softmax],
        Step::DeepReduce {
            op: ReduceOp::Sum, ..
        } => vec![Step::Reduce(ReduceOp::Sum, 1)],
        Step::DeepReduce { width, .. } => vec![Step::DeepReduce {
            op: ReduceOp::Sum,
            width: *width,
        }],
        Step::DecodeAttention { .. } => vec![Step::Reduce(ReduceOp::Sum, 1), Step::Softmax],
        Step::Reshape => vec![relu],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_ir::OpKind;
    use sf_tensor::DType;

    fn big_spec() -> GraphSpec {
        GraphSpec {
            seed: 7,
            m: 32,
            n: 64,
            dtype: DType::F32,
            instances: 4,
            multi_output: true,
            steps: vec![
                Step::Unary(UnaryOp::Tanh),
                Step::Gemm {
                    width: 32,
                    transpose_b: true,
                },
                Step::Softmax,
                Step::Attention { seq: 16 },
                Step::CombineWeight(BinaryOp::Mul),
                Step::Reduce(ReduceOp::Mean, 1),
            ],
        }
    }

    #[test]
    fn trivial_predicate_shrinks_to_single_relu() {
        // "Always fails" → everything removable is removed; the
        // build-time floor (one relu on the input) is what remains.
        let res = shrink(&big_spec(), |_| true, 10_000);
        let g = res.spec.build().unwrap();
        assert_eq!(g.ops().len(), 1, "ops: {:?}", g.ops());
        assert!(matches!(g.ops()[0].kind, OpKind::Unary(UnaryOp::Relu)));
        assert_eq!(res.spec.instances, 1);
        assert!(!res.spec.multi_output);
        assert_eq!(res.spec.m, 2);
        assert_eq!(res.spec.n, 2);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let pred = |g: &Graph| {
            g.ops()
                .iter()
                .any(|o| matches!(o.kind, OpKind::Gemm { .. }))
        };
        let a = shrink(&big_spec(), pred, 10_000);
        let b = shrink(&big_spec(), pred, 10_000);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn predicate_holds_on_result() {
        let pred = |g: &Graph| {
            g.ops()
                .iter()
                .any(|o| matches!(o.kind, OpKind::Reduce { .. }))
        };
        let res = shrink(&big_spec(), pred, 10_000);
        let g = res.spec.build().unwrap();
        assert!(pred(&g));
        // A single reduce plus nothing else: at most 2 ops survive
        // (reduce + possibly the floor relu is not added since ops
        // exist).
        assert!(g.ops().len() <= 2, "ops: {:?}", g.ops());
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let res = shrink(&big_spec(), |_| false, 10_000);
        assert_eq!(res.spec, big_spec());
        assert_eq!(res.accepted, 0);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let res = shrink(&big_spec(), |_| true, 5);
        assert!(res.attempts <= 5);
    }
}
