//! The differential oracle.
//!
//! One graph, one verdict: the oracle executes the graph on the
//! reference interpreter (`Graph::execute`), then compiles it under
//! every [`FusionPolicy`] and executes each compiled program at several
//! worker-thread counts, comparing all outputs against the reference
//! with the shared ULP/abs-tol comparator from `sf_tensor::compare`.
//! Every compiled candidate is additionally run through the static
//! verifier (`spacefusion::verify`); error-level findings on a random
//! graph count as failures just like numeric divergence.
//!
//! Tolerances are derived from the graph itself
//! ([`derive_tolerance`]): fused schedules re-associate reductions
//! (spatial/temporal slicing, UTA online rescaling), so the accepted
//! drift grows with the largest reduction extent and the number of
//! reductions. Real fusion bugs produce values that are wrong by
//! orders of magnitude, far outside any re-association envelope.

use spacefusion::pipeline::{CompileOptions, CompileSession, FusionPolicy};
use spacefusion::verify::{counts, verify_program, VerifyConfig};
use spacefusion::SfError;

use sf_gpu_sim::Arch;
use sf_ir::{Graph, OpKind};
use sf_tensor::{compare_tensors, Tolerance};

/// All fusion policies, in reporting order.
pub const POLICIES: [FusionPolicy; 5] = [
    FusionPolicy::SpaceFusion,
    FusionPolicy::Unfused,
    FusionPolicy::EpilogueOnly,
    FusionPolicy::MiOnly,
    FusionPolicy::TileGraph,
];

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Target architecture.
    pub arch: Arch,
    /// Seed for `Graph::random_bindings`.
    pub binding_seed: u64,
    /// Worker-thread counts to execute at (`0` = auto/max).
    pub threads: Vec<usize>,
    /// Comparator tolerance; `None` derives one per graph.
    pub tolerance: Option<Tolerance>,
    /// Run the static verifier on every compiled program.
    pub lint: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            arch: Arch::Ampere,
            binding_seed: 0,
            threads: vec![1, 2, 0],
            tolerance: None,
            lint: true,
        }
    }
}

/// What went wrong for one `(policy, thread-count)` candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The reference interpreter itself failed (generator bug).
    Reference,
    /// Compilation returned an error.
    Compile,
    /// The static verifier reported error-level diagnostics.
    Lint,
    /// Compiled execution returned an error.
    Execute,
    /// Compiled output diverged from the reference.
    Divergence,
    /// A fault-injection run aborted or produced a degraded result
    /// that does not match the unfused reference bitwise.
    Fault,
}

impl FailureKind {
    /// Stable lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Reference => "reference",
            FailureKind::Compile => "compile",
            FailureKind::Lint => "lint",
            FailureKind::Execute => "execute",
            FailureKind::Divergence => "divergence",
            FailureKind::Fault => "fault",
        }
    }
}

/// One oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Classification.
    pub kind: FailureKind,
    /// Policy under which the failure occurred (`None` for reference
    /// failures, which precede compilation).
    pub policy: Option<FusionPolicy>,
    /// Worker-thread count (`None` when not execution-related).
    pub threads: Option<usize>,
    /// Human-readable detail (deterministic for a given graph).
    pub detail: String,
}

impl Failure {
    /// Stable one-line rendering.
    pub fn render(&self) -> String {
        let mut s = self.kind.label().to_string();
        if let Some(p) = self.policy {
            s.push_str(&format!(" policy={p:?}"));
        }
        if let Some(t) = self.threads {
            if t == 0 {
                s.push_str(" threads=max");
            } else {
                s.push_str(&format!(" threads={t}"));
            }
        }
        s.push_str(": ");
        s.push_str(&self.detail);
        s
    }
}

/// Outcome of one oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// All failures, in deterministic (policy, thread) order.
    pub failures: Vec<Failure>,
    /// Successful compilations.
    pub compiles: usize,
    /// Successful executions (per policy × thread count).
    pub executions: usize,
}

impl OracleReport {
    /// Whether the graph passed under every policy and thread count.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Derives a comparison tolerance from the reductions in a graph.
///
/// Fusion re-associates each reduction (spatial blocks accumulate in a
/// different order; UTA rescales running softmax sums), so the budget
/// scales with the largest reduced extent and, linearly, with how many
/// reduction-carrying ops feed an output. Element-wise-only graphs get
/// an exact (bitwise-value) comparison.
pub fn derive_tolerance(graph: &Graph) -> Tolerance {
    let mut max_extent = 0usize;
    let mut reductions = 0usize;
    for op in graph.ops() {
        let extent = match &op.kind {
            OpKind::Reduce { dim, .. } => graph.shape(op.inputs[0]).dims()[*dim],
            OpKind::Gemm { .. } => graph.shape(op.inputs[0]).dims()[1],
            _ => continue,
        };
        reductions += 1;
        max_extent = max_extent.max(extent);
    }
    if reductions == 0 {
        // Element-wise programs are evaluated in value order on both
        // sides; still allow a couple of ULPs for fused-multiply
        // contraction differences in composite unaries.
        return Tolerance::new(0.0, 4);
    }
    let base = Tolerance::for_reduction_extent(max_extent);
    let factor = reductions.min(16) as u32;
    Tolerance::new(
        base.abs * factor as f32,
        base.ulps.saturating_mul(factor).min(1 << 20),
    )
}

/// Runs the differential oracle on one graph.
pub fn run_oracle(graph: &Graph, opts: &OracleOptions) -> OracleReport {
    use spacefusion::codegen::{ExecEngine, ExecOptions};

    // One persistent engine for every policy and thread count in this
    // oracle run: warm pool threads and scratch arenas are reused
    // across candidates, and the comparisons double as a check that a
    // reused engine stays bit-identical to a fresh one.
    let engine = ExecEngine::shared();
    let mut report = OracleReport::default();
    let bindings = graph.random_bindings(opts.binding_seed);
    let reference = match graph.execute(&bindings) {
        Ok(r) => r,
        Err(e) => {
            report.failures.push(Failure {
                kind: FailureKind::Reference,
                policy: None,
                threads: None,
                detail: e.to_string(),
            });
            return report;
        }
    };
    let tol = opts.tolerance.unwrap_or_else(|| derive_tolerance(graph));

    for policy in POLICIES {
        let mut copts = CompileOptions {
            policy,
            // The oracle runs the verifier itself so findings are
            // classified (and configurable) rather than folded into a
            // compile error.
            verify: false,
            ..Default::default()
        };
        if policy == FusionPolicy::TileGraph {
            copts.slicing.enable_uta = false;
        }
        let session = CompileSession::new(opts.arch, copts).with_engine(engine.clone());
        let program = match session.compile(graph) {
            Ok(p) => p,
            Err(e) => {
                report.failures.push(Failure {
                    kind: FailureKind::Compile,
                    policy: Some(policy),
                    threads: None,
                    detail: render_sf_error(&e),
                });
                continue;
            }
        };
        report.compiles += 1;

        if opts.lint {
            let diags = verify_program(&program.kernels, &program.arch, &VerifyConfig::default());
            let (errors, _) = counts(&diags);
            if errors > 0 {
                let detail = diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                report.failures.push(Failure {
                    kind: FailureKind::Lint,
                    policy: Some(policy),
                    threads: None,
                    detail,
                });
            }
        }

        for &threads in &opts.threads {
            let out = match program.execute_with(&bindings, &ExecOptions::with_threads(threads)) {
                Ok(o) => o,
                Err(e) => {
                    report.failures.push(Failure {
                        kind: FailureKind::Execute,
                        policy: Some(policy),
                        threads: Some(threads),
                        detail: render_sf_error(&e),
                    });
                    continue;
                }
            };
            report.executions += 1;
            if out.len() != reference.len() {
                report.failures.push(Failure {
                    kind: FailureKind::Divergence,
                    policy: Some(policy),
                    threads: Some(threads),
                    detail: format!(
                        "output count {} != reference {}",
                        out.len(),
                        reference.len()
                    ),
                });
                continue;
            }
            for (i, (got, want)) in out.iter().zip(reference.iter()).enumerate() {
                if let Err(m) = compare_tensors(got, want, tol) {
                    report.failures.push(Failure {
                        kind: FailureKind::Divergence,
                        policy: Some(policy),
                        threads: Some(threads),
                        detail: format!("output {i}: {m}"),
                    });
                }
            }
        }
    }
    report
}

fn render_sf_error(e: &SfError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn softmax(m: usize, n: usize) -> Graph {
        let mut g = Graph::new("softmax", DType::F32);
        let x = g.input("x", Shape::new(vec![m, n]));
        let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, x, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        g.mark_output(d);
        g
    }

    #[test]
    fn softmax_passes_everywhere() {
        let report = run_oracle(&softmax(8, 32), &OracleOptions::default());
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.compiles, POLICIES.len());
        assert_eq!(report.executions, POLICIES.len() * 3);
    }

    #[test]
    fn elementwise_graphs_compare_exactly() {
        let mut g = Graph::new("ew", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 4]));
        let y = g.unary(UnaryOp::Relu, x).unwrap();
        g.mark_output(y);
        let tol = derive_tolerance(&g);
        assert_eq!(tol.abs, 0.0);
        assert!(tol.ulps <= 4);
        assert!(run_oracle(&g, &OracleOptions::default()).ok());
    }

    #[test]
    fn tolerance_scales_with_reduction_extent() {
        let small = derive_tolerance(&softmax(4, 8));
        let large = derive_tolerance(&softmax(4, 64));
        assert!(large.abs > small.abs);
        assert!(large.ulps >= small.ulps);
    }

    #[test]
    fn failure_render_is_stable() {
        let f = Failure {
            kind: FailureKind::Divergence,
            policy: Some(FusionPolicy::SpaceFusion),
            threads: Some(0),
            detail: "output 0: x".into(),
        };
        assert_eq!(
            f.render(),
            "divergence policy=SpaceFusion threads=max: output 0: x"
        );
    }
}
