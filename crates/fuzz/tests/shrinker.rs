//! End-to-end shrinker convergence: a known-bad graph — a seeded recipe
//! with a planted bug-triggering mutation — must shrink to a repro of at
//! most three ops, deterministically.
//!
//! The engine currently has no real miscompile to minimize (see
//! EXPERIMENTS.md), so the bug is *synthetic*: a dim-0 (column)
//! reduction is spliced into a generated recipe, and the predicate
//! flags any graph containing one — standing in for "the compiler
//! mis-schedules column reductions". The shrinker only sees the
//! predicate, exactly as it would a real oracle failure, so the
//! convergence behaviour transfers. Column reductions are a good
//! planted trigger because no motif emits one (softmax, layernorm and
//! attention all reduce over dim 1), so the minimal carrier is a single
//! `reduce` op — any bigger final repro means a shrinking move was
//! missed.

use sf_fuzz::{generate, shrink, GenConfig, GraphSpec, Step};
use sf_ir::{Graph, OpKind};
use sf_tensor::ops::ReduceOp;

/// The planted bug: "any graph with a column (dim-0) reduction fails".
fn triggers_bug(g: &Graph) -> bool {
    g.ops()
        .iter()
        .any(|op| matches!(op.kind, OpKind::Reduce { dim: 0, .. }))
}

/// A generated recipe with the bug trigger spliced into the middle —
/// the "known-bad graph mutation". Scans seeds until the mutated
/// recipe actually builds with the trigger live (splice position must
/// have both extents > 1 or the step is skipped as infeasible).
fn known_bad() -> GraphSpec {
    let cfg = GenConfig::default();
    (0..10_000)
        .map(|seed| {
            let mut spec = generate(seed, &cfg);
            let mid = spec.steps.len() / 2;
            spec.steps.insert(mid, Step::Reduce(ReduceOp::Max, 0));
            spec
        })
        .find(|spec| {
            spec.steps.len() >= 6 && spec.build().map(|g| triggers_bug(&g)).unwrap_or(false)
        })
        .expect("a viable mutation site exists below seed 10000")
}

#[test]
fn known_bad_graph_shrinks_to_a_tiny_repro() {
    let spec = known_bad();
    let start_ops = spec.build().unwrap().ops().len();
    let result = shrink(&spec, triggers_bug, 2_000);
    let minimized = result.spec.build().unwrap();

    assert!(triggers_bug(&minimized), "shrinking must preserve the bug");
    assert!(
        minimized.ops().len() <= 3,
        "expected <=3 ops, got {} (started at {start_ops}): {:?}",
        minimized.ops().len(),
        result.spec.steps
    );
    assert!(result.accepted > 0, "at least one move must be accepted");
    // Shape noise must shrink too, not just the step list.
    assert!(result.spec.m <= 4 && result.spec.n <= 4);
    assert_eq!(result.spec.instances, 1);
    assert!(!result.spec.multi_output);
}

#[test]
fn shrinking_is_deterministic() {
    let spec = known_bad();
    let a = shrink(&spec, triggers_bug, 2_000);
    let b = shrink(&spec, triggers_bug, 2_000);
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.accepted, b.accepted);
}
