//! The `sfc` subcommands.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use spacefusion::compiler::{CompileOptions, FusionPolicy};
use spacefusion::pipeline::{render_timings, CollectingSink, CompileSession};
use spacefusion::sched::OpRole;
use spacefusion::slicer::AggKind;
use spacefusion::smg::build_smg;
use spacefusion::verify::{counts, verify_program, DiagCode, VerifyConfig};
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Target architecture.
    pub arch: Arch,
    /// Fusion policy.
    pub policy: FusionPolicy,
    /// Emit the SMG in Graphviz DOT.
    pub dot: bool,
    /// Profile the compiled program on the simulator.
    pub profile: bool,
    /// Execute numerically with random inputs of this seed and verify
    /// against the unfused reference.
    pub verify_seed: Option<u64>,
    /// Apply the streaming-variance rewrite before compiling.
    pub rewrite: bool,
    /// Emit Triton-style pseudo-code for each kernel.
    pub emit: bool,
    /// Print the per-pass timing table from the instrumentation events.
    pub timings: bool,
    /// Worker threads for the execution engine's spatial block loop
    /// (`0` = auto).
    pub exec_threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            arch: Arch::Ampere,
            policy: FusionPolicy::SpaceFusion,
            dot: false,
            profile: false,
            verify_seed: None,
            rewrite: false,
            emit: false,
            timings: false,
            exec_threads: 0,
        }
    }
}

/// Parses the value of an `--arch` flag.
fn arch_arg(args: &[String], i: usize) -> Result<Arch, String> {
    let s = args.get(i).map(|s| s.as_str()).unwrap_or("<missing>");
    Arch::parse(s).ok_or_else(|| format!("unknown --arch '{s}' (volta|ampere|hopper)"))
}

/// Parses the value of a `--policy` flag.
fn policy_arg(args: &[String], i: usize) -> Result<FusionPolicy, String> {
    let s = args.get(i).map(|s| s.as_str()).unwrap_or("<missing>");
    FusionPolicy::parse(s).ok_or_else(|| {
        format!("unknown --policy '{s}' (spacefusion|unfused|epilogue|mi-only|tile-graph)")
    })
}

/// Parses `--flag value` style arguments.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--arch" => {
                i += 1;
                o.arch = arch_arg(args, i)?;
            }
            "--policy" => {
                i += 1;
                o.policy = policy_arg(args, i)?;
            }
            "--dot" => o.dot = true,
            "--profile" => o.profile = true,
            "--verify" => {
                i += 1;
                o.verify_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--verify needs a seed")?,
                );
            }
            "--rewrite" => o.rewrite = true,
            "--emit" => o.emit = true,
            "--timings" => o.timings = true,
            "--exec-threads" => {
                i += 1;
                o.exec_threads = match args.get(i).map(|s| s.as_str()) {
                    Some("max") => 0,
                    Some(n) => n
                        .parse()
                        .map_err(|_| "--exec-threads needs a count or 'max'".to_string())?,
                    None => return Err("--exec-threads needs a count or 'max'".into()),
                };
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Parsed options of `sfc lint`.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Target architecture.
    pub arch: Arch,
    /// Fusion policy.
    pub policy: FusionPolicy,
    /// Emit machine-readable JSON instead of the table.
    pub json: bool,
    /// Treat warnings as lint failures.
    pub deny_warnings: bool,
    /// Per-code severity configuration (`--warn/--deny/--allow CODE`).
    pub config: VerifyConfig,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            arch: Arch::Ampere,
            policy: FusionPolicy::SpaceFusion,
            json: false,
            deny_warnings: false,
            config: VerifyConfig::default(),
        }
    }
}

/// Parses `sfc lint` flags.
pub fn parse_lint_options(args: &[String]) -> Result<LintOptions, String> {
    let mut o = LintOptions::default();
    let code_arg = |args: &[String], i: usize, flag: &str| -> Result<DiagCode, String> {
        let s = args
            .get(i)
            .ok_or_else(|| format!("{flag} needs a diagnostic code"))?;
        DiagCode::parse(s).ok_or_else(|| format!("unknown diagnostic code '{s}'"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--arch" => {
                i += 1;
                o.arch = arch_arg(args, i)?;
            }
            "--policy" => {
                i += 1;
                o.policy = policy_arg(args, i)?;
            }
            "--json" => o.json = true,
            "--deny-warnings" => o.deny_warnings = true,
            "--warn" => {
                i += 1;
                o.config = o.config.warn(code_arg(args, i, "--warn")?);
            }
            "--deny" => {
                i += 1;
                o.config = o.config.deny(code_arg(args, i, "--deny")?);
            }
            "--allow" => {
                i += 1;
                o.config = o.config.allow(code_arg(args, i, "--allow")?);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Runs `sfc lint`: compile `graph` and run the static verifier over the
/// result.
///
/// Returns `(report, clean)`; `clean` is `false` when any error-level
/// diagnostic survives (or any warning under `--deny-warnings`), which
/// `main` turns into a failing exit code.
pub fn lint_report(graph: &Graph, o: &LintOptions) -> Result<(String, bool), String> {
    use std::fmt::Write as _;

    // Disable the in-pipeline verifier: lint collects the diagnostics
    // itself so it can render all of them instead of failing on the
    // first error.
    let mut opts = CompileOptions {
        policy: o.policy,
        verify: false,
        ..Default::default()
    };
    if o.policy == FusionPolicy::TileGraph {
        opts.slicing.enable_uta = false;
    }
    let program = CompileSession::new(o.arch, opts)
        .compile(graph)
        .map_err(|e| e.to_string())?;
    let diags = verify_program(&program.kernels, &program.arch, &o.config);
    let (errors, warnings) = counts(&diags);
    let clean = errors == 0 && (!o.deny_warnings || warnings == 0);

    let mut out = String::new();
    if o.json {
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"model\": \"{}\",", json_escape(graph.name()));
        let _ = writeln!(out, "  \"arch\": \"{}\",", o.arch);
        let _ = writeln!(out, "  \"kernels\": {},", program.kernels.len());
        let _ = writeln!(out, "  \"errors\": {errors},");
        let _ = writeln!(out, "  \"warnings\": {warnings},");
        let _ = writeln!(
            out,
            "  \"degradations\": {},",
            program.stats.degradations.len()
        );
        let _ = writeln!(
            out,
            "  \"lockfree_proven\": {},",
            program
                .kernels
                .iter()
                .filter(|k| k.disjoint.is_proven())
                .count()
        );
        let _ = writeln!(
            out,
            "  \"serial_fallbacks\": {},",
            program.stats.lockfree_fallbacks.len()
        );
        let _ = writeln!(out, "  \"clean\": {clean},");
        let _ = writeln!(out, "  \"diagnostics\": [");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"code\": \"{}\", \"severity\": \"{}\", \"kernel\": \"{}\", \
                 \"span\": \"{}\", \"message\": \"{}\"}}{comma}",
                d.code,
                d.severity,
                json_escape(&d.kernel),
                json_escape(&d.span.to_string()),
                json_escape(&d.message)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        return Ok((out, clean));
    }

    let _ = writeln!(
        out,
        "lint '{}' for {}: {} kernel(s), {} check(s)",
        graph.name(),
        o.arch,
        program.kernels.len(),
        DiagCode::all().len()
    );
    for step in &program.stats.degradations {
        let _ = writeln!(out, "degraded {}", step.render());
    }
    let proven = program
        .kernels
        .iter()
        .filter(|k| k.disjoint.is_proven())
        .count();
    let _ = writeln!(
        out,
        "disjointness: {proven}/{} kernel(s) proven lock-free",
        program.kernels.len()
    );
    for (kernel, reason) in &program.stats.lockfree_fallbacks {
        let _ = writeln!(out, "serial-fallback {kernel}: {reason}");
    }
    if diags.is_empty() {
        let _ = writeln!(out, "clean: no diagnostics");
    } else {
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:<20} {:<18} message",
            "code", "level", "kernel", "span"
        );
        for d in &diags {
            let _ = writeln!(
                out,
                "{:<8} {:<8} {:<20} {:<18} {}",
                d.code.code(),
                d.severity.to_string(),
                d.kernel,
                d.span.to_string(),
                d.message
            );
        }
        let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    }
    Ok((out, clean))
}

/// Parsed options of `sfc fuzz`.
#[derive(Debug, Clone, Default)]
pub struct FuzzOptions {
    /// Campaign configuration handed to [`sf_fuzz::run_fuzz`].
    pub fuzz: sf_fuzz::FuzzOptions,
    /// Print the per-pass timing table after the report.
    pub timings: bool,
}

/// Parses `sfc fuzz` flags.
pub fn parse_fuzz_options(args: &[String]) -> Result<FuzzOptions, String> {
    let mut o = FuzzOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                o.fuzz.seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seeds needs a count")?;
            }
            "--seed" => {
                i += 1;
                o.fuzz.seed0 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a starting seed")?;
            }
            "--minimize" => o.fuzz.minimize = true,
            "--corpus" => {
                i += 1;
                o.fuzz.corpus_dir = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .ok_or("--corpus needs a directory")?,
                );
            }
            "--arch" => {
                i += 1;
                o.fuzz.arch = arch_arg(args, i)?;
            }
            "--faults" => {
                i += 1;
                o.fuzz.faults = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--faults needs a plan count")?;
            }
            "--timings" => o.timings = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if o.fuzz.minimize && o.fuzz.corpus_dir.is_none() {
        o.fuzz.corpus_dir = Some(std::path::PathBuf::from("tests/corpus"));
    }
    Ok(o)
}

/// Parsed options of `sfc faultsim`.
#[derive(Debug, Clone, Default)]
pub struct FaultSimOptions {
    /// Sweep configuration handed to [`sf_fuzz::run_faultsim`].
    pub sim: sf_fuzz::FaultSimOptions,
    /// Print the per-pass timing table after the report.
    pub timings: bool,
}

/// Parses `sfc faultsim` flags.
pub fn parse_faultsim_options(args: &[String]) -> Result<FaultSimOptions, String> {
    let mut o = FaultSimOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                o.sim.seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seeds needs a count")?;
            }
            "--seed" => {
                i += 1;
                o.sim.seed0 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a starting seed")?;
            }
            "--faults" => {
                i += 1;
                o.sim.plans = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--faults needs a plan count")?;
            }
            "--arch" => {
                i += 1;
                o.sim.arch = arch_arg(args, i)?;
            }
            "--timings" => o.timings = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Runs `sfc faultsim`: a deterministic fault-injection sweep proving
/// that every injected fault (panic, cache poison, forced
/// infeasibility, worker crash, deadline expiry) either recovers or
/// degrades to output bit-identical to the unfused reference.
///
/// Returns `(report, clean)`; `clean` is `false` on any abort or
/// bitwise divergence.
pub fn faultsim_report(o: &FaultSimOptions) -> (String, bool) {
    use std::fmt::Write as _;
    let sink = Arc::new(CollectingSink::new());
    let report = sf_fuzz::run_faultsim(&o.sim, sink.as_ref());
    let mut out = report.render();
    if o.timings {
        let _ = writeln!(out, "\n{}", render_timings(&sink.events()).trim_end());
    }
    (out, report.ok())
}

/// Runs `sfc fuzz`: a differential fuzzing campaign over generated
/// graphs (see `sf_fuzz`).
///
/// Returns `(report, clean)`; `clean` is `false` when any seed failed
/// (compile error, verifier error, execution error, or divergence from
/// the reference interpreter). The report text is deterministic for a
/// given flag set: timings go only to the event sink, so two runs with
/// the same `--seeds/--seed` produce byte-identical output.
pub fn fuzz_report(o: &FuzzOptions) -> (String, bool) {
    use std::fmt::Write as _;
    let sink = Arc::new(CollectingSink::new());
    let report = sf_fuzz::run_fuzz(&o.fuzz, sink.as_ref());
    let mut out = report.render();
    if o.timings {
        let _ = writeln!(out, "\n{}", render_timings(&sink.events()).trim_end());
    }
    (out, report.ok())
}

/// Parsed options of `sfc serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: std::path::PathBuf,
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded admission queue depth.
    pub queue_depth: usize,
    /// Execution threads per request (`0` = auto).
    pub exec_threads: usize,
    /// Schedule-cache snapshot file (loaded at start, saved at
    /// shutdown).
    pub snapshot: Option<std::path::PathBuf>,
    /// Per-session socket read/write timeout, ms (stalled or idle
    /// clients are reaped after this long).
    pub session_timeout_ms: u64,
}

/// Parses `sfc serve SOCKET [flags]`.
pub fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let (socket, flags) = args
        .split_first()
        .ok_or("serve needs a socket path: sfc serve SOCKET [flags]")?;
    if socket.starts_with("--") {
        return Err(format!("serve needs a socket path, got flag '{socket}'"));
    }
    let mut o = ServeOptions {
        socket: std::path::PathBuf::from(socket),
        workers: 4,
        queue_depth: 64,
        exec_threads: 0,
        snapshot: None,
        session_timeout_ms: 30_000,
    };
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--workers" => {
                i += 1;
                o.workers = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive count")?;
            }
            "--queue-depth" => {
                i += 1;
                o.queue_depth = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--queue-depth needs a positive count")?;
            }
            "--exec-threads" => {
                i += 1;
                o.exec_threads = match flags.get(i).map(|s| s.as_str()) {
                    Some("max") => 0,
                    Some(n) => n
                        .parse()
                        .map_err(|_| "--exec-threads needs a count or 'max'".to_string())?,
                    None => return Err("--exec-threads needs a count or 'max'".into()),
                };
            }
            "--snapshot" => {
                i += 1;
                o.snapshot = Some(
                    flags
                        .get(i)
                        .map(std::path::PathBuf::from)
                        .ok_or("--snapshot needs a file path")?,
                );
            }
            "--session-timeout-ms" => {
                i += 1;
                o.session_timeout_ms = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--session-timeout-ms needs a positive count")?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Runs `sfc serve`: bind the socket, warm-start the schedule cache
/// from the snapshot, and serve until a client sends `shutdown`.
///
/// Prints a banner once listening (so scripts can wait for readiness)
/// and returns the final counter summary.
#[cfg(unix)]
pub fn serve_run(o: &ServeOptions) -> Result<String, String> {
    use spacefusion::serve::{ServeConfig, Server};
    use std::io::Write as _;
    let config = ServeConfig {
        workers: o.workers,
        queue_depth: o.queue_depth,
        exec_threads: o.exec_threads,
        snapshot_path: o.snapshot.clone(),
        session_timeout_ms: o.session_timeout_ms,
        faults: None,
    };
    let server = Server::bind(&o.socket, config).map_err(|e| e.to_string())?;
    let warm = server.core().stats();
    println!(
        "serve: listening on {} (workers {}, queue {}, warm_loaded {}, warm_evicted {})",
        o.socket.display(),
        o.workers,
        o.queue_depth,
        warm.warm_loaded,
        warm.warm_evicted
    );
    let _ = std::io::stdout().flush();
    let stats = server.run().map_err(|e| e.to_string())?;
    Ok(format!(
        "serve: done; requests {} ok {} errors {} sheds {} compiles {} hits {} \
         schedule_entries {} degradations {}\n",
        stats.requests,
        stats.ok,
        stats.errors,
        stats.sheds,
        stats.program_compiles,
        stats.program_hits,
        stats.schedule_entries,
        stats.degradations
    ))
}

/// Parsed options of `sfc chaos`.
#[derive(Debug, Clone)]
pub struct ChaosCliOptions {
    /// Unix-domain socket path the per-seed daemons bind.
    pub socket: std::path::PathBuf,
    /// Number of seeded fault plans.
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Concurrent clients per seed.
    pub clients: usize,
    /// Requests per client per seed.
    pub requests: usize,
    /// Per-session watchdog timeout, ms.
    pub session_timeout_ms: u64,
}

/// Parses `sfc chaos SOCKET [flags]`.
pub fn parse_chaos_options(args: &[String]) -> Result<ChaosCliOptions, String> {
    let (socket, flags) = args
        .split_first()
        .ok_or("chaos needs a socket path: sfc chaos SOCKET [flags]")?;
    if socket.starts_with("--") {
        return Err(format!("chaos needs a socket path, got flag '{socket}'"));
    }
    let mut o = ChaosCliOptions {
        socket: std::path::PathBuf::from(socket),
        seeds: 25,
        seed0: 0,
        clients: 3,
        requests: 4,
        session_timeout_ms: 200,
    };
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--seeds" => {
                i += 1;
                o.seeds = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--seeds needs a positive count")?;
            }
            "--seed" => {
                i += 1;
                o.seed0 = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--clients" => {
                i += 1;
                o.clients = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--clients needs a positive count")?;
            }
            "--requests" => {
                i += 1;
                o.requests = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--requests needs a positive count")?;
            }
            "--session-timeout-ms" => {
                i += 1;
                o.session_timeout_ms = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--session-timeout-ms needs a positive count")?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Runs `sfc chaos`: a seeded fault campaign against per-seed daemons.
///
/// Returns `(report, clean)`; `clean` is `false` on any hang, daemon
/// abort, checksum mismatch, or snapshot corruption. The report is
/// deterministic for a fixed seed range.
#[cfg(unix)]
pub fn chaos_report(o: &ChaosCliOptions) -> Result<(String, bool), String> {
    use spacefusion::serve::chaos;
    let report = chaos::run(&chaos::ChaosOptions {
        socket: o.socket.clone(),
        seeds: o.seeds,
        seed0: o.seed0,
        clients: o.clients,
        requests: o.requests,
        session_timeout_ms: o.session_timeout_ms,
    })
    .map_err(|e| e.to_string())?;
    let clean = report.hangs == 0
        && report.aborts == 0
        && report.mismatches == 0
        && report.snapshot_corruptions == 0;
    Ok((report.text, clean))
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs `sfc compile`: compile, report, optionally verify and profile.
///
/// Returns the report text (also printed by `main`).
pub fn compile_report(graph: &Graph, o: &Options) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();

    let graph = if o.rewrite {
        match spacefusion::rewrite::streaming_variance(graph) {
            Some(g) => {
                let _ = writeln!(out, "applied streaming-variance rewrite");
                g
            }
            None => graph.clone(),
        }
    } else {
        graph.clone()
    };

    if o.dot {
        let smg = build_smg(&graph).map_err(|e| e.to_string())?;
        return Ok(smg.to_dot(&graph));
    }

    let mut opts = CompileOptions {
        policy: o.policy,
        ..Default::default()
    };
    if o.policy == FusionPolicy::TileGraph {
        opts.slicing.enable_uta = false;
    }
    let sink = Arc::new(CollectingSink::new());
    let session = CompileSession::new(o.arch, opts).with_sink(sink.clone());
    let program = session.compile(&graph).map_err(|e| e.to_string())?;

    let _ = writeln!(
        out,
        "compiled '{}' for {}: {} operator(s) -> {} kernel(s)",
        graph.name(),
        o.arch,
        graph.ops().len(),
        program.kernels.len()
    );
    for kp in &program.kernels {
        let s = &kp.schedule;
        let _ = writeln!(
            out,
            "  kernel {:<28} ops={:<2} grid={:<6} smem={:>4} KiB regs={:>4} KiB",
            kp.name,
            kp.graph.ops().len(),
            s.grid() * graph.instances as u64,
            s.smem_per_block(&kp.graph) >> 10,
            s.regs_per_block(&kp.graph) >> 10,
        );
        if let Some(t) = &s.temporal {
            let split = t.split.as_ref().map_or(String::new(), |sp| {
                format!(", split-K {} partitions", sp.partitions)
            });
            let _ = writeln!(
                out,
                "    temporal: block {} over extent {}, two-phase {}{split}",
                t.block,
                s.smg.extent(t.plan.dim),
                t.plan.two_phase
            );
            for r in &t.plan.sliced {
                let name = kp.graph.ops()[r.op.0].kind.name();
                match &r.agg {
                    AggKind::Simple => {
                        let _ = writeln!(out, "      {name}: Simple Aggregate");
                    }
                    AggKind::Uta(f) => {
                        let _ = writeln!(out, "      {name}: UTA with {} factor(s)", f.len());
                    }
                }
            }
        }
        let in_loop = kp.roles.iter().filter(|r| **r == OpRole::InLoop).count();
        let post = kp.roles.iter().filter(|r| **r == OpRole::PostLoop).count();
        if post > 0 {
            let _ = writeln!(out, "    {in_loop} in-loop op(s), {post} post-loop op(s)");
        }
    }
    for step in &program.stats.degradations {
        let _ = writeln!(out, "  degraded {}", step.render());
    }
    for (kernel, reason) in &program.stats.lockfree_fallbacks {
        let _ = writeln!(out, "  serial-fallback {kernel}: {reason}");
    }

    if o.timings {
        let _ = writeln!(out, "\n{}", render_timings(&sink.events()).trim_end());
    }

    if o.emit {
        for kp in &program.kernels {
            let _ = writeln!(out, "\n{}", spacefusion::codegen::emit_pseudocode(kp));
        }
    }

    if let Some(seed) = o.verify_seed {
        let bindings = graph.random_bindings(seed);
        let expect = graph.execute(&bindings).map_err(|e| e.to_string())?;
        let got = program
            .execute_with(
                &bindings,
                &spacefusion::codegen::ExecOptions::with_threads(o.exec_threads),
            )
            .map_err(|e| e.to_string())?;
        let mut worst = 0.0f32;
        for (a, b) in got.iter().zip(expect.iter()) {
            worst = worst.max(a.max_abs_diff(b).unwrap_or(f32::INFINITY));
        }
        let _ = writeln!(
            out,
            "verify(seed={seed}): max |fused - reference| = {worst:.3e}"
        );
        if worst > 1e-2 {
            return Err(format!("verification FAILED: diff {worst}"));
        }
    }

    if o.profile {
        for kp in &program.kernels {
            let occ = sf_gpu_sim::occupancy(
                &program.arch,
                kp.schedule.grid() * program.instances as u64,
                kp.schedule.smem_per_block(&kp.graph),
                kp.schedule.regs_per_block(&kp.graph),
            );
            let _ = writeln!(
                out,
                "occupancy {}: {} block(s)/SM, {} wave(s)",
                kp.name, occ.blocks_per_sm, occ.waves
            );
        }
        let r = program.profile(2);
        let _ = writeln!(
            out,
            "profile: {:.1} us, DRAM {:.2} MiB (read {:.2} / write {:.2}), L1 miss {:.1}%, L2 miss {:.1}%",
            r.time_us,
            r.stats.dram_total_bytes() as f64 / (1 << 20) as f64,
            r.stats.dram_read_bytes as f64 / (1 << 20) as f64,
            r.stats.dram_write_bytes as f64 / (1 << 20) as f64,
            100.0 * r.stats.l1_misses as f64 / r.stats.l1_accesses.max(1) as f64,
            100.0 * r.stats.l2_misses as f64 / r.stats.l2_accesses.max(1) as f64,
        );
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse_graph;

    const LN: &str = "\
graph ln f16
input x [64, 2048]
weight w [1, 2048]
weight b [1, 2048]
mean = reduce_mean x dim=1
c = sub x mean
sq = sqr c
var = reduce_mean sq dim=1
veps = add_scalar var 1e-5
std = sqrt veps
norm = div c std
sc = mul norm w
y = add sc b
output y
";

    #[test]
    fn option_parsing() {
        let args: Vec<String> = ["--arch", "hopper", "--policy", "mi-only", "--profile"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.arch, Arch::Hopper);
        assert_eq!(o.policy, FusionPolicy::MiOnly);
        assert!(o.profile);
        assert!(parse_options(&["--bogus".to_string()]).is_err());
        assert!(parse_options(&["--arch".to_string(), "mars".to_string()]).is_err());
    }

    #[test]
    fn exec_threads_parsing() {
        let args: Vec<String> = ["--exec-threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_options(&args).unwrap().exec_threads, 4);
        let args: Vec<String> = ["--exec-threads", "max"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_options(&args).unwrap().exec_threads, 0);
        assert!(parse_options(&["--exec-threads".to_string()]).is_err());
        assert!(parse_options(&["--exec-threads".to_string(), "soon".to_string()]).is_err());
    }

    #[test]
    fn compile_report_covers_layernorm() {
        let g = parse_graph(LN).unwrap();
        let o = Options {
            profile: true,
            verify_seed: Some(3),
            ..Default::default()
        };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.contains("1 kernel(s)"));
        assert!(report.contains("verify(seed=3)"));
        assert!(report.contains("profile:"));
    }

    #[test]
    fn emit_flag_prints_pseudocode() {
        let g = parse_graph(LN).unwrap();
        let o = Options {
            emit: true,
            ..Default::default()
        };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.contains("parallel_for block"));
        assert!(report.contains("store("));
    }

    #[test]
    fn timings_flag_reports_every_fig9_pass() {
        // A row too wide for on-chip residence forces partitioning, so
        // even the fallback pass appears in the table.
        let wide = LN.replace("2048", "65536");
        let g = parse_graph(&wide).unwrap();
        let o = Options {
            timings: true,
            ..Default::default()
        };
        let report = compile_report(&g, &o).unwrap();
        for pass in [
            "segment",
            "group",
            "cache-lookup",
            "smg-build",
            "spatial-slice",
            "temporal-slice",
            "enum-cfg",
            "partition",
            "tune",
            "emit",
            "verify",
        ] {
            assert!(report.contains(pass), "missing pass '{pass}' in:\n{report}");
        }
        assert!(report.contains("schedule cache:"), "{report}");
    }

    #[test]
    fn serve_option_parsing() {
        let args: Vec<String> = [
            "/tmp/sfc.sock",
            "--workers",
            "2",
            "--queue-depth",
            "8",
            "--exec-threads",
            "max",
            "--snapshot",
            "/tmp/cache.sfcache",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_serve_options(&args).unwrap();
        assert_eq!(o.socket, std::path::PathBuf::from("/tmp/sfc.sock"));
        assert_eq!(o.workers, 2);
        assert_eq!(o.queue_depth, 8);
        assert_eq!(o.exec_threads, 0);
        assert_eq!(
            o.snapshot,
            Some(std::path::PathBuf::from("/tmp/cache.sfcache"))
        );
        assert!(parse_serve_options(&[]).is_err(), "socket path required");
        assert!(parse_serve_options(&["--workers".to_string()]).is_err());
        assert!(
            parse_serve_options(&[
                "s.sock".to_string(),
                "--workers".to_string(),
                "0".to_string()
            ])
            .is_err(),
            "zero workers rejected"
        );
        assert!(parse_serve_options(&["s.sock".to_string(), "--bogus".to_string()]).is_err());
        // Session timeout: defaults to 30 s, flag overrides, zero rejected.
        assert_eq!(o.session_timeout_ms, 30_000);
        let o = parse_serve_options(&[
            "s.sock".to_string(),
            "--session-timeout-ms".to_string(),
            "250".to_string(),
        ])
        .unwrap();
        assert_eq!(o.session_timeout_ms, 250);
        assert!(parse_serve_options(&[
            "s.sock".to_string(),
            "--session-timeout-ms".to_string(),
            "0".to_string()
        ])
        .is_err());
    }

    #[test]
    fn chaos_option_parsing() {
        let args: Vec<String> = [
            "/tmp/sfc-chaos.sock",
            "--seeds",
            "50",
            "--seed",
            "7",
            "--clients",
            "2",
            "--requests",
            "3",
            "--session-timeout-ms",
            "150",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_chaos_options(&args).unwrap();
        assert_eq!(o.socket, std::path::PathBuf::from("/tmp/sfc-chaos.sock"));
        assert_eq!(o.seeds, 50);
        assert_eq!(o.seed0, 7);
        assert_eq!(o.clients, 2);
        assert_eq!(o.requests, 3);
        assert_eq!(o.session_timeout_ms, 150);
        // Defaults.
        let o = parse_chaos_options(&["c.sock".to_string()]).unwrap();
        assert_eq!(o.seeds, 25);
        assert_eq!(o.seed0, 0);
        assert_eq!(o.clients, 3);
        assert_eq!(o.requests, 4);
        assert_eq!(o.session_timeout_ms, 200);
        assert!(parse_chaos_options(&[]).is_err(), "socket path required");
        assert!(parse_chaos_options(&["--seeds".to_string()]).is_err());
        assert!(parse_chaos_options(&[
            "c.sock".to_string(),
            "--seeds".to_string(),
            "0".to_string()
        ])
        .is_err());
        assert!(parse_chaos_options(&["c.sock".to_string(), "--bogus".to_string()]).is_err());
    }

    #[test]
    fn faultsim_option_parsing() {
        let args: Vec<String> = [
            "--seeds", "12", "--seed", "3", "--faults", "4", "--arch", "volta",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_faultsim_options(&args).unwrap();
        assert_eq!(o.sim.seeds, 12);
        assert_eq!(o.sim.seed0, 3);
        assert_eq!(o.sim.plans, 4);
        assert_eq!(o.sim.arch, Arch::Volta);
        assert!(parse_faultsim_options(&["--faults".to_string()]).is_err());
        assert!(parse_faultsim_options(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn fuzz_faults_flag_parses() {
        let args: Vec<String> = ["--seeds", "5", "--faults", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_fuzz_options(&args).unwrap();
        assert_eq!(o.fuzz.seeds, 5);
        assert_eq!(o.fuzz.faults, 2);
    }

    #[test]
    fn faultsim_report_runs_clean() {
        let o = FaultSimOptions {
            sim: sf_fuzz::FaultSimOptions {
                seeds: 5,
                plans: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (report, clean) = faultsim_report(&o);
        assert!(clean, "{report}");
        assert!(report.contains("faultsim: 5 plan(s)"), "{report}");
        assert!(report.contains("0 abort(s)"), "{report}");
    }

    #[test]
    fn lint_option_parsing() {
        let args: Vec<String> = [
            "--arch",
            "volta",
            "--json",
            "--deny-warnings",
            "--warn",
            "res201",
            "--allow",
            "BND402",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_lint_options(&args).unwrap();
        assert_eq!(o.arch, Arch::Volta);
        assert!(o.json && o.deny_warnings);
        assert_eq!(o.config.levels.len(), 1);
        assert_eq!(
            o.config.allowed,
            vec![spacefusion::verify::DiagCode::BndTileOutOfBounds]
        );
        assert!(parse_lint_options(&["--warn".into(), "NOPE99".into()]).is_err());
    }

    #[test]
    fn lint_report_is_clean_on_layernorm() {
        let g = parse_graph(LN).unwrap();
        let (report, clean) = lint_report(&g, &LintOptions::default()).unwrap();
        assert!(clean, "{report}");
        assert!(report.contains("clean: no diagnostics"), "{report}");
    }

    #[test]
    fn lint_json_output_is_machine_readable() {
        let g = parse_graph(LN).unwrap();
        let o = LintOptions {
            json: true,
            ..Default::default()
        };
        let (report, clean) = lint_report(&g, &o).unwrap();
        assert!(clean, "{report}");
        assert!(report.contains("\"errors\": 0"), "{report}");
        assert!(report.contains("\"clean\": true"), "{report}");
        assert!(report.contains("\"diagnostics\": ["), "{report}");
    }

    #[test]
    fn dot_output_mode() {
        let g = parse_graph(LN).unwrap();
        let o = Options {
            dot: true,
            ..Default::default()
        };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.starts_with("digraph"));
    }

    #[test]
    fn rewrite_flag_changes_the_schedule() {
        // A row too wide for on-chip residence: only the rewritten,
        // streaming form can be temporally sliced.
        let wide = LN.replace("2048", "65536");
        let g = parse_graph(&wide).unwrap();
        let plain = compile_report(&g, &Options::default()).unwrap();
        let rewritten = compile_report(
            &g,
            &Options {
                rewrite: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Unrewritten: the fused region does not fit on chip and the
        // variance chain defeats the temporal slicer, so the compiler
        // must partition into several kernels.
        assert!(!plain.contains("-> 1 kernel(s)"), "{plain}");
        // Rewritten: one streaming kernel with temporal slicing.
        assert!(rewritten.contains("applied streaming-variance rewrite"));
        assert!(rewritten.contains("-> 1 kernel(s)"), "{rewritten}");
        assert!(rewritten.contains("temporal:"), "{rewritten}");
    }
}
