//! The `sfc` subcommands.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use spacefusion::compiler::{CompileOptions, FusionPolicy};
use spacefusion::pipeline::{render_timings, CollectingSink, CompileSession};
use spacefusion::sched::OpRole;
use spacefusion::slicer::AggKind;
use spacefusion::smg::build_smg;
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Target architecture.
    pub arch: Arch,
    /// Fusion policy.
    pub policy: FusionPolicy,
    /// Emit the SMG in Graphviz DOT.
    pub dot: bool,
    /// Profile the compiled program on the simulator.
    pub profile: bool,
    /// Execute numerically with random inputs of this seed and verify
    /// against the unfused reference.
    pub verify_seed: Option<u64>,
    /// Apply the streaming-variance rewrite before compiling.
    pub rewrite: bool,
    /// Emit Triton-style pseudo-code for each kernel.
    pub emit: bool,
    /// Print the per-pass timing table from the instrumentation events.
    pub timings: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            arch: Arch::Ampere,
            policy: FusionPolicy::SpaceFusion,
            dot: false,
            profile: false,
            verify_seed: None,
            rewrite: false,
            emit: false,
            timings: false,
        }
    }
}

/// Parses `--flag value` style arguments.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--arch" => {
                i += 1;
                o.arch = match args.get(i).map(|s| s.as_str()) {
                    Some("volta") => Arch::Volta,
                    Some("ampere") => Arch::Ampere,
                    Some("hopper") => Arch::Hopper,
                    other => return Err(format!("unknown --arch {other:?}")),
                };
            }
            "--policy" => {
                i += 1;
                o.policy = match args.get(i).map(|s| s.as_str()) {
                    Some("spacefusion") => FusionPolicy::SpaceFusion,
                    Some("unfused") => FusionPolicy::Unfused,
                    Some("epilogue") => FusionPolicy::EpilogueOnly,
                    Some("mi-only") => FusionPolicy::MiOnly,
                    Some("tile-graph") => FusionPolicy::TileGraph,
                    other => return Err(format!("unknown --policy {other:?}")),
                };
            }
            "--dot" => o.dot = true,
            "--profile" => o.profile = true,
            "--verify" => {
                i += 1;
                o.verify_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--verify needs a seed")?,
                );
            }
            "--rewrite" => o.rewrite = true,
            "--emit" => o.emit = true,
            "--timings" => o.timings = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(o)
}

/// Runs `sfc compile`: compile, report, optionally verify and profile.
///
/// Returns the report text (also printed by `main`).
pub fn compile_report(graph: &Graph, o: &Options) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();

    let graph = if o.rewrite {
        match spacefusion::rewrite::streaming_variance(graph) {
            Some(g) => {
                let _ = writeln!(out, "applied streaming-variance rewrite");
                g
            }
            None => graph.clone(),
        }
    } else {
        graph.clone()
    };

    if o.dot {
        let smg = build_smg(&graph).map_err(|e| e.to_string())?;
        return Ok(smg.to_dot(&graph));
    }

    let mut opts = CompileOptions { policy: o.policy, ..Default::default() };
    if o.policy == FusionPolicy::TileGraph {
        opts.slicing.enable_uta = false;
    }
    let sink = Arc::new(CollectingSink::new());
    let session = CompileSession::new(o.arch, opts).with_sink(sink.clone());
    let program = session.compile(&graph).map_err(|e| e.to_string())?;

    let _ = writeln!(
        out,
        "compiled '{}' for {}: {} operator(s) -> {} kernel(s)",
        graph.name(),
        o.arch,
        graph.ops().len(),
        program.kernels.len()
    );
    for kp in &program.kernels {
        let s = &kp.schedule;
        let _ = writeln!(
            out,
            "  kernel {:<28} ops={:<2} grid={:<6} smem={:>4} KiB regs={:>4} KiB",
            kp.name,
            kp.graph.ops().len(),
            s.grid() * graph.instances as u64,
            s.smem_per_block(&kp.graph) >> 10,
            s.regs_per_block(&kp.graph) >> 10,
        );
        if let Some(t) = &s.temporal {
            let _ = writeln!(
                out,
                "    temporal: block {} over extent {}, two-phase {}",
                t.block,
                s.smg.extent(t.plan.dim),
                t.plan.two_phase
            );
            for r in &t.plan.sliced {
                let name = kp.graph.ops()[r.op.0].kind.name();
                match &r.agg {
                    AggKind::Simple => {
                        let _ = writeln!(out, "      {name}: Simple Aggregate");
                    }
                    AggKind::Uta(f) => {
                        let _ = writeln!(out, "      {name}: UTA with {} factor(s)", f.len());
                    }
                }
            }
        }
        let in_loop = kp.roles.iter().filter(|r| **r == OpRole::InLoop).count();
        let post = kp.roles.iter().filter(|r| **r == OpRole::PostLoop).count();
        if post > 0 {
            let _ = writeln!(out, "    {in_loop} in-loop op(s), {post} post-loop op(s)");
        }
    }

    if o.timings {
        let _ = writeln!(out, "\n{}", render_timings(&sink.events()).trim_end());
    }

    if o.emit {
        for kp in &program.kernels {
            let _ = writeln!(out, "\n{}", spacefusion::codegen::emit_pseudocode(kp));
        }
    }

    if let Some(seed) = o.verify_seed {
        let bindings = graph.random_bindings(seed);
        let expect = graph.execute(&bindings).map_err(|e| e.to_string())?;
        let got = program.execute(&bindings).map_err(|e| e.to_string())?;
        let mut worst = 0.0f32;
        for (a, b) in got.iter().zip(expect.iter()) {
            worst = worst.max(a.max_abs_diff(b).unwrap_or(f32::INFINITY));
        }
        let _ = writeln!(out, "verify(seed={seed}): max |fused - reference| = {worst:.3e}");
        if worst > 1e-2 {
            return Err(format!("verification FAILED: diff {worst}"));
        }
    }

    if o.profile {
        for kp in &program.kernels {
            let occ = sf_gpu_sim::occupancy(
                &program.arch,
                kp.schedule.grid() * program.instances as u64,
                kp.schedule.smem_per_block(&kp.graph),
                kp.schedule.regs_per_block(&kp.graph),
            );
            let _ = writeln!(
                out,
                "occupancy {}: {} block(s)/SM, {} wave(s)",
                kp.name, occ.blocks_per_sm, occ.waves
            );
        }
        let r = program.profile(2);
        let _ = writeln!(
            out,
            "profile: {:.1} us, DRAM {:.2} MiB (read {:.2} / write {:.2}), L1 miss {:.1}%, L2 miss {:.1}%",
            r.time_us,
            r.stats.dram_total_bytes() as f64 / (1 << 20) as f64,
            r.stats.dram_read_bytes as f64 / (1 << 20) as f64,
            r.stats.dram_write_bytes as f64 / (1 << 20) as f64,
            100.0 * r.stats.l1_misses as f64 / r.stats.l1_accesses.max(1) as f64,
            100.0 * r.stats.l2_misses as f64 / r.stats.l2_accesses.max(1) as f64,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_graph;

    const LN: &str = "\
graph ln f16
input x [64, 2048]
weight w [1, 2048]
weight b [1, 2048]
mean = reduce_mean x dim=1
c = sub x mean
sq = sqr c
var = reduce_mean sq dim=1
veps = add_scalar var 1e-5
std = sqrt veps
norm = div c std
sc = mul norm w
y = add sc b
output y
";

    #[test]
    fn option_parsing() {
        let args: Vec<String> = ["--arch", "hopper", "--policy", "mi-only", "--profile"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.arch, Arch::Hopper);
        assert_eq!(o.policy, FusionPolicy::MiOnly);
        assert!(o.profile);
        assert!(parse_options(&["--bogus".to_string()]).is_err());
        assert!(parse_options(&["--arch".to_string(), "mars".to_string()]).is_err());
    }

    #[test]
    fn compile_report_covers_layernorm() {
        let g = parse_graph(LN).unwrap();
        let o = Options { profile: true, verify_seed: Some(3), ..Default::default() };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.contains("1 kernel(s)"));
        assert!(report.contains("verify(seed=3)"));
        assert!(report.contains("profile:"));
    }

    #[test]
    fn emit_flag_prints_pseudocode() {
        let g = parse_graph(LN).unwrap();
        let o = Options { emit: true, ..Default::default() };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.contains("parallel_for block"));
        assert!(report.contains("store("));
    }

    #[test]
    fn timings_flag_reports_every_fig9_pass() {
        // A row too wide for on-chip residence forces partitioning, so
        // even the fallback pass appears in the table.
        let wide = LN.replace("2048", "65536");
        let g = parse_graph(&wide).unwrap();
        let o = Options { timings: true, ..Default::default() };
        let report = compile_report(&g, &o).unwrap();
        for pass in [
            "segment", "group", "cache-lookup", "smg-build", "spatial-slice",
            "temporal-slice", "enum-cfg", "partition", "tune", "emit",
        ] {
            assert!(report.contains(pass), "missing pass '{pass}' in:\n{report}");
        }
        assert!(report.contains("schedule cache:"), "{report}");
    }

    #[test]
    fn dot_output_mode() {
        let g = parse_graph(LN).unwrap();
        let o = Options { dot: true, ..Default::default() };
        let report = compile_report(&g, &o).unwrap();
        assert!(report.starts_with("digraph"));
    }

    #[test]
    fn rewrite_flag_changes_the_schedule() {
        // A row too wide for on-chip residence: only the rewritten,
        // streaming form can be temporally sliced.
        let wide = LN.replace("2048", "65536");
        let g = parse_graph(&wide).unwrap();
        let plain = compile_report(&g, &Options::default()).unwrap();
        let rewritten =
            compile_report(&g, &Options { rewrite: true, ..Default::default() }).unwrap();
        // Unrewritten: the fused region does not fit on chip and the
        // variance chain defeats the temporal slicer, so the compiler
        // must partition into several kernels.
        assert!(!plain.contains("-> 1 kernel(s)"), "{plain}");
        // Rewritten: one streaming kernel with temporal slicing.
        assert!(rewritten.contains("applied streaming-variance rewrite"));
        assert!(rewritten.contains("-> 1 kernel(s)"), "{rewritten}");
        assert!(rewritten.contains("temporal:"), "{rewritten}");
    }
}
