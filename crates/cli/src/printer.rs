//! Renders a graph back to the `sfc` DSL.
//!
//! The implementation moved to [`sf_ir::dsl`] (see
//! [`crate::parser`] for why); this re-export keeps the historical
//! `sf_cli::printer` path working.

pub use sf_ir::dsl::print_graph;
