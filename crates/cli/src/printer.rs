//! Renders a graph back to the `sfc` DSL.

use sf_ir::{Graph, OpKind, ValueId, ValueKind};
use sf_tensor::DType;
use std::fmt::Write as _;

/// Prints a graph in DSL form (round-trips through
/// [`crate::parser::parse_graph`]).
pub fn print_graph(g: &Graph) -> String {
    let mut out = String::new();
    let dtype = match g.dtype() {
        DType::F16 => "f16",
        DType::F32 => "f32",
    };
    let _ = writeln!(out, "graph {} {dtype}", sanitize(g.name()));
    if g.instances != 1 {
        let _ = writeln!(out, "instances {}", g.instances);
    }
    for (vi, v) in g.values().iter().enumerate() {
        let kw = match v.kind {
            ValueKind::Input => "input",
            ValueKind::Weight => "weight",
            ValueKind::Intermediate => continue,
        };
        let _ = writeln!(
            out,
            "{kw} {} {}",
            sanitize(&v.name),
            shape_str(g, ValueId(vi))
        );
    }
    for op in g.ops() {
        let name = sanitize(&g.value(op.output).name);
        let a = |i: usize| sanitize(&g.value(op.inputs[i]).name);
        let line = match &op.kind {
            OpKind::Gemm { transpose_b } => {
                let t = if *transpose_b { " transpose_b" } else { "" };
                format!("{name} = gemm {} {}{t}", a(0), a(1))
            }
            OpKind::Unary(u) => format!("{name} = {} {}", u.name(), a(0)),
            OpKind::Binary(b) => format!("{name} = {} {} {}", b.name(), a(0), a(1)),
            OpKind::Scalar { op, value } => {
                format!("{name} = {}_scalar {} {value}", op.name(), a(0))
            }
            OpKind::Reduce { op, dim } => {
                format!("{name} = reduce_{} {} dim={dim}", op.name(), a(0))
            }
            OpKind::Broadcast { dim, extent } => {
                format!("{name} = broadcast {} dim={dim} extent={extent}", a(0))
            }
            OpKind::LayoutBarrier => {
                format!("{name} = reshape {} {}", a(0), shape_str(g, op.output))
            }
        };
        let _ = writeln!(out, "{line}");
    }
    for &o in g.outputs() {
        let _ = writeln!(out, "output {}", sanitize(&g.value(o).name));
    }
    out
}

fn shape_str(g: &Graph, v: ValueId) -> String {
    let dims: Vec<String> = g.shape(v).dims().iter().map(|d| d.to_string()).collect();
    format!("[{}]", dims.join(", "))
}

/// DSL identifiers cannot contain whitespace; auto-generated names are
/// already clean, but user names from other frontends may not be.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == '=' || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::Shape;

    fn mha() -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        g.instances = 4;
        let q = g.input("q", Shape::new(vec![32, 64]));
        let k = g.input("k", Shape::new(vec![128, 64]));
        let v = g.input("v", Shape::new(vec![128, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        let sc = g.scalar(BinaryOp::Mul, qk, 0.125).unwrap();
        let m = g.reduce(ReduceOp::Max, sc, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, sc, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = mha();
        let text = print_graph(&g);
        let g2 = parse_graph(&text).expect("round trip parses");
        assert_eq!(g2.ops().len(), g.ops().len());
        assert_eq!(g2.instances, g.instances);
        assert_eq!(g2.outputs().len(), 1);
        for (a, b) in g.ops().iter().zip(g2.ops()) {
            assert_eq!(a.kind.name(), b.kind.name());
        }
    }

    #[test]
    fn round_trip_preserves_numerics() {
        let g = mha();
        let g2 = parse_graph(&print_graph(&g)).unwrap();
        let bindings = g.random_bindings(5);
        let a = g.execute(&bindings).unwrap();
        let b = g2.execute(&bindings).unwrap();
        assert!(a[0].allclose(&b[0], 1e-6));
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize("a name=with #stuff"), "a_name_with__stuff");
    }

    #[test]
    fn prints_reshape_and_broadcast() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 1]));
        let b = g.broadcast(x, 1, 8).unwrap();
        let r = g.layout_barrier(b, Shape::new(vec![8, 4])).unwrap();
        g.mark_output(r);
        let text = print_graph(&g);
        assert!(text.contains("broadcast x dim=1 extent=8"));
        assert!(text.contains("reshape"));
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g2.shape(g2.outputs()[0]).dims(), &[8, 4]);
    }
}
