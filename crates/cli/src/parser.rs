//! Parser for the `sfc` graph DSL.
//!
//! The implementation moved to [`sf_ir::dsl`] so non-CLI layers (the
//! differential fuzzer's corpus files, the replay tests) can parse
//! graphs without depending on this crate; these re-exports keep the
//! historical `sf_cli::parser` paths working.

pub use sf_ir::dsl::{parse_graph, ParseError};
