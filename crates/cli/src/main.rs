//! `sfc` — the SpaceFusion command-line compiler.
//!
//! ```text
//! sfc compile FILE [--arch volta|ampere|hopper]
//!                  [--policy spacefusion|unfused|epilogue|mi-only|tile-graph]
//!                  [--dot] [--profile] [--verify SEED] [--rewrite]
//!                  [--emit] [--timings] [--exec-threads N|max]
//! sfc lint FILE    [--arch ...] [--policy ...] [--json] [--deny-warnings]
//!                  [--warn CODE] [--deny CODE] [--allow CODE]
//! sfc fuzz         [--seeds N] [--seed S] [--minimize] [--corpus DIR]
//!                  [--faults K] [--arch ...] [--timings]
//! sfc faultsim     [--seeds N] [--seed S] [--faults K] [--arch ...]
//!                  [--timings]
//! sfc serve SOCKET [--workers N] [--queue-depth N]
//!                  [--exec-threads N|max] [--snapshot FILE]
//!                  [--session-timeout-ms MS]
//! sfc chaos SOCKET [--seeds N] [--seed S] [--clients N]
//!                  [--requests N] [--session-timeout-ms MS]
//! sfc print FILE       # parse and pretty-print back to the DSL
//! ```

use sf_cli::driver::{
    compile_report, faultsim_report, fuzz_report, lint_report, parse_chaos_options,
    parse_faultsim_options, parse_fuzz_options, parse_lint_options, parse_options,
    parse_serve_options,
};
use sf_cli::{parse_graph, print_graph};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: sfc <compile|lint|fuzz|faultsim|serve|chaos|print> [FILE|SOCKET] [flags] \
                 (see --help in README)";
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    if cmd == "fuzz" {
        // `fuzz` generates its own graphs: no FILE argument.
        let opts = match parse_fuzz_options(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sfc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (report, clean) = fuzz_report(&opts);
        print!("{report}");
        return if clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if cmd == "faultsim" {
        // `faultsim` generates its own graphs: no FILE argument.
        let opts = match parse_faultsim_options(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sfc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (report, clean) = faultsim_report(&opts);
        print!("{report}");
        return if clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if cmd == "serve" {
        // `serve` takes a socket path, not a graph FILE.
        let opts = match parse_serve_options(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sfc: {e}");
                return ExitCode::FAILURE;
            }
        };
        #[cfg(unix)]
        {
            return match sf_cli::driver::serve_run(&opts) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("sfc: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        #[cfg(not(unix))]
        {
            let _ = opts;
            eprintln!("sfc: serve requires Unix-domain sockets");
            return ExitCode::FAILURE;
        }
    }
    if cmd == "chaos" {
        // `chaos` takes a socket path, not a graph FILE.
        let opts = match parse_chaos_options(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sfc: {e}");
                return ExitCode::FAILURE;
            }
        };
        #[cfg(unix)]
        {
            return match sf_cli::driver::chaos_report(&opts) {
                Ok((report, clean)) => {
                    print!("{report}");
                    if clean {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("sfc: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        #[cfg(not(unix))]
        {
            let _ = opts;
            eprintln!("sfc: chaos requires Unix-domain sockets");
            return ExitCode::FAILURE;
        }
    }
    let (file, flags) = match rest.split_first() {
        Some((f, fl)) => (f, fl.to_vec()),
        None => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sfc: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match parse_graph(&src) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("sfc: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "print" => {
            print!("{}", print_graph(&graph));
            ExitCode::SUCCESS
        }
        "compile" => {
            let opts = match parse_options(&flags) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("sfc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match compile_report(&graph, &opts) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("sfc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "lint" => {
            let opts = match parse_lint_options(&flags) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("sfc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match lint_report(&graph, &opts) {
                Ok((report, clean)) => {
                    print!("{report}");
                    if clean {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("sfc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("sfc: unknown command '{other}'\n{usage}");
            ExitCode::FAILURE
        }
    }
}
