//! Library backing the `sfc` command-line tool.
//!
//! * [`parser`] — a small textual DSL for operator graphs, so fusion
//!   experiments don't require writing Rust:
//!
//! ```text
//! graph softmax f16
//! input x [1024, 2048]
//! m   = reduce_max x dim=1
//! s   = sub x m
//! e   = exp s
//! z   = reduce_sum e dim=1
//! out = div e z
//! output out
//! ```
//!
//! * [`printer`] — the inverse: render any [`sf_ir::Graph`] back to the
//!   DSL (round-trips through the parser).
//! * [`driver`] — the `compile` / `explain` subcommands used by
//!   `src/main.rs`.

// The no-new-unwrap gate (see crates/core/src/lib.rs): the driver backs
// a long-running daemon (`sfc serve`), where a stray panic is an
// outage. Test modules opt back in locally with `#[allow]`.
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod driver;
pub mod parser;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod printer;

pub use parser::{parse_graph, ParseError};
pub use printer::print_graph;
